"""Fleet execution: many concurrent jobs, one simulator, one shared pool.

One *fleet run* places every job of a :class:`~repro.scenarios.spec.ScenarioSpec`
on a single discrete-event simulator.  Each job is a
:class:`~repro.training.session.TrainingSession` driven by a
:class:`FleetJobController` — a :class:`~repro.cmdare.controller.CMDareController`
whose replacement requests go through the shared
:class:`~repro.scenarios.pool.TransientPool` and can therefore be denied or
queued.  Worker lifetimes are drawn from the calibrated
:class:`~repro.cloud.revocation.RevocationModel` at launch time, using each
region's *local* hour-of-day, so fleet revocations reproduce the paper's
Table V / Fig. 8 / Fig. 9 characterization at pool level.

The fleet loop interleaves sessions with the PR 2 vectorized fast-forward
path: every unfinished session is offered a heap-free replay span before
the loop falls back to one ordinary heap event, so a fleet run is exactly
as deterministic as (and much faster than) stepping the shared heap event
by event.

``fleet_cell`` is the module-level sweep cell function: one cell simulates
one whole fleet from its own derived random streams, which is what makes
scenario sweeps serial/parallel bit-identical and resumable through the
:class:`repro.sweeps.SweepRunner` cache.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cloud.machines import PARAMETER_SERVER_MACHINE, gpu_worker_machine
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.cmdare.controller import CMDareController, ControllerConfig
from repro.errors import SimulationError
from repro.scenarios.pool import DENIED, QUEUED, TransientPool
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import SweepCell, SweepRunner, SweepSpec, SweepResult
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.training.worker import WorkerState
from repro.workloads.catalog import ModelCatalog, default_catalog

#: Heap-event/fast-forward budget per fleet job (matches the single-session
#: default of TrainingSession.run_to_completion).
MAX_EVENTS_PER_JOB = 5_000_000


class FleetJobController(CMDareController):
    """A CM-DARE controller whose replacements contend on a shared pool.

    Args:
        session: The job's training session.
        pool: Shared transient-server pool.
        queue_replacements: Queue exhausted-pool requests instead of
            denying them.
        on_replacement_admitted: Invoked as ``callback(session, worker)``
            when a replacement worker is actually admitted (the fleet uses
            this to schedule the new server's own revocation draw).
        config: Controller behaviour switches.
    """

    def __init__(self, session: TrainingSession, pool: TransientPool,
                 queue_replacements: bool = False,
                 on_replacement_admitted: Optional[
                     Callable[[TrainingSession, WorkerState], None]] = None,
                 config: Optional[ControllerConfig] = None):
        super().__init__(session, config=config)
        self.pool = pool
        self.queue_replacements = queue_replacements
        self.on_replacement_admitted = on_replacement_admitted
        self.replacements_admitted = 0
        self.replacements_denied = 0
        self.replacements_pending = 0

    def request_replacement(self, revoked: WorkerState) -> None:
        """Route the replacement request through the shared pool."""
        gpu, region = revoked.spec.gpu_name, revoked.spec.region_name
        # The grant callback may run synchronously (slot free now) or later
        # (served from the waiter queue); only queued requests count as
        # pending, and only their grants decrement the pending count.
        state = {"queued": False}

        def grant() -> None:
            if state["queued"]:
                self.replacements_pending -= 1
            self._admit_replacement(revoked)

        outcome = self.pool.request_replacement(
            gpu, region, grant, queue=self.queue_replacements,
            label=f"{self.session.job.model_name}:{revoked.worker_id}")
        if outcome == DENIED:
            self.replacements_denied += 1
            self._log("replacement-denied",
                      f"pool exhausted: no {gpu} capacity in {region} for "
                      f"{revoked.worker_id}")
        elif outcome == QUEUED:
            state["queued"] = True
            self.replacements_pending += 1
            self._log("replacement-queued",
                      f"pool exhausted: queued {gpu} replacement for "
                      f"{revoked.worker_id} in {region}")

    def _admit_replacement(self, revoked: WorkerState) -> None:
        """A pool slot was assigned; actually add the replacement worker."""
        if self.session.finished:
            # Granted from the queue after the job already completed: the
            # slot was taken by the pool before the callback, hand it back.
            self.pool.release(revoked.spec.gpu_name, revoked.spec.region_name)
            return
        worker = super().request_replacement(revoked)
        self.replacements_admitted += 1
        if self.on_replacement_admitted is not None:
            self.on_replacement_admitted(self.session, worker)


class _FleetJob:
    """Runtime bundle for one job of the fleet."""

    def __init__(self, spec: JobSpec, session: TrainingSession,
                 controller: FleetJobController):
        self.spec = spec
        self.session = session
        self.controller = controller
        self.stalled = False
        self.stalled_at = 0.0
        self.started = False

    def end_time(self, now: float) -> float:
        """When the job stopped mattering: finish, stall, or the present."""
        if self.session.finished:
            return self.session.trace.end_time
        return self.stalled_at if self.stalled else now


class FleetRun:
    """One fleet simulation, wired and ready to :meth:`run`.

    Args:
        scenario: The scenario to simulate.
        streams: Root random streams of this fleet (one sweep cell).
        catalog: Model catalog resolving job model names.
        price_catalog: Pricing used for fleet cost accounting.
        fast_forward: Core-path override forwarded to every session.
    """

    def __init__(self, scenario: ScenarioSpec, streams: RandomStreams,
                 catalog: Optional[ModelCatalog] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 fast_forward: Optional[bool] = None):
        self.scenario = scenario
        self.streams = streams
        self.catalog = catalog if catalog is not None else default_catalog()
        self.prices = (price_catalog if price_catalog is not None
                       else default_price_catalog())
        self.fast_forward = fast_forward
        epoch = (scenario.epoch_hour_utc if scenario.epoch_hour_utc is not None
                 else float(streams.get("epoch").uniform(0, 24)))
        self.simulator = Simulator(epoch_hour_utc=epoch)
        self.pool = TransientPool(self.simulator, scenario.pool_capacity,
                                  reclaim_seconds=scenario.reclaim_seconds)
        self.revocation_model = RevocationModel(rng=streams.get("revocation"))
        self.revocation_hours_local: List[float] = []
        self.jobs: List[_FleetJob] = [self._wire_job(spec)
                                      for spec in scenario.jobs]

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def _wire_job(self, spec: JobSpec) -> _FleetJob:
        profile = self.catalog.profile(spec.model_name)
        job = TrainingJob(profile=profile, total_steps=spec.total_steps,
                          checkpoint_interval_steps=spec.checkpoint_interval_steps)
        session = TrainingSession(
            self.simulator, spec.cluster(), job,
            streams=self.streams.spawn(f"job:{spec.name}"),
            steps_per_event=spec.steps_per_event,
            fast_forward=self.fast_forward)
        controller = FleetJobController(
            session, self.pool, queue_replacements=spec.queue_replacements,
            on_replacement_admitted=self._schedule_revocation,
            config=ControllerConfig(
                auto_mitigate_bottleneck=spec.auto_mitigate_bottleneck,
                poll_interval_seconds=self.scenario.poll_interval_seconds))
        # Initial workers reserve their pool slots at fleet launch, before
        # any job starts training (the spec validated the demand fits).
        for gpu, region in spec.workers:
            self.pool.acquire(gpu, region)
        session.on_finished.append(self._release_job_slots)
        fleet_job = _FleetJob(spec, session, controller)
        self.simulator.schedule(spec.start_delay_seconds,
                                lambda _sim, fj=fleet_job: self._start_job(fj),
                                label=f"fleet:start:{spec.name}")
        return fleet_job

    def _start_job(self, fleet_job: _FleetJob) -> None:
        fleet_job.started = True
        fleet_job.session.start()
        fleet_job.controller.start_monitoring()
        for worker in list(fleet_job.session.workers.values()):
            self._schedule_revocation(fleet_job.session, worker)

    def _release_job_slots(self, session: TrainingSession) -> None:
        """A job completed: its surviving servers go back to the pool."""
        for worker in session.active_workers():
            if worker.is_transient:
                self.pool.release(worker.spec.gpu_name, worker.spec.region_name)

    def _schedule_revocation(self, session: TrainingSession,
                             worker: WorkerState) -> None:
        """Draw the worker's fate from the calibrated revocation model.

        The draw happens at launch time using the region's *local* hour of
        day, exactly like the simulated provider does, so fleet-level
        revocations carry the paper's hour-of-day clustering (Fig. 9).
        """
        gpu, region_name = worker.spec.gpu_name, worker.spec.region_name
        region = get_region(region_name)
        launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
        outcome = self.revocation_model.sample(gpu, region_name,
                                               launch_hour_local=launch_hour,
                                               stressed=True)
        if not outcome.revoked:
            # The server survives to the 24-hour reclamation; fleet jobs
            # complete well before, so no termination event is scheduled.
            return

        def revoke(_sim: Simulator) -> None:
            if session.finished or not worker.active:
                return
            self.revocation_hours_local.append(
                float(outcome.revocation_hour_local))
            self.pool.revoke(gpu, region_name)
            session.handle_revocation(worker.worker_id)
            self._check_stalled(session)

        self.simulator.schedule(outcome.lifetime_seconds, revoke,
                                label=f"fleet:revoke:{worker.worker_id}")

    def _check_stalled(self, session: TrainingSession) -> None:
        """Detect a job that lost every worker with no replacement coming.

        Such a job can never finish: stop its monitoring loop so the heap
        drains instead of polling forever, and mark it stalled.
        """
        for fleet_job in self.jobs:
            if fleet_job.session is session:
                if (not session.finished and not session.active_workers()
                        and fleet_job.controller.replacements_pending == 0):
                    fleet_job.stalled = True
                    fleet_job.stalled_at = self.simulator.now
                    fleet_job.controller.stop_monitoring()
                return

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Run the fleet to completion and return the JSON payload.

        The loop offers every unfinished session a vectorized fast-forward
        span, then fires one heap event, until every job finished (or
        stalled with an empty heap).
        """
        max_events = MAX_EVENTS_PER_JOB * len(self.jobs)
        processed = 0
        while processed < max_events:
            for fleet_job in self.jobs:
                if not fleet_job.session.finished:
                    processed += fleet_job.session.fast_forward(
                        max_events - processed)
            if all(job.session.finished or job.stalled for job in self.jobs):
                # A stalled job has no queued replacement left by
                # definition, so nothing in the heap (pool reclaim
                # returns, stale revocation draws) can revive it: stop
                # instead of draining events up to a day in the future,
                # which would inflate the fleet clock past the last
                # meaningful moment.
                break
            if self.simulator.step() is None:
                break
            processed += 1
        if processed >= max_events:
            raise SimulationError(
                f"fleet {self.scenario.name!r} exceeded {max_events} events")
        return self._payload()

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def _job_cost(self, fleet_job: _FleetJob, end_time: float) -> float:
        """Cloud cost of one job: per-second billing of workers and PSs."""
        cost = 0.0
        for worker in fleet_job.session.workers.values():
            stop = worker.revoked_at if worker.revoked_at is not None else end_time
            span = max(0.0, stop - worker.joined_at)
            machine = gpu_worker_machine(worker.spec.gpu_name)
            cost += self.prices.cost(machine, worker.is_transient, span)
        cost += fleet_job.spec.num_parameter_servers * self.prices.cost(
            PARAMETER_SERVER_MACHINE, False, end_time)
        # Parameter servers added mid-run by bottleneck mitigation bill
        # from the moment they were provisioned.
        for action in fleet_job.controller.actions:
            if action.kind == "mitigation":
                cost += self.prices.cost(PARAMETER_SERVER_MACHINE, False,
                                         max(0.0, end_time - action.time))
        return cost

    def _payload(self) -> Dict[str, Any]:
        jobs: List[Dict[str, Any]] = []
        makespan = 0.0
        total_cost = 0.0
        for fleet_job in self.jobs:
            session = fleet_job.session
            completed = session.finished
            end = fleet_job.end_time(self.simulator.now)
            makespan = max(makespan, end)
            cost = self._job_cost(fleet_job, end)
            total_cost += cost
            controller = fleet_job.controller
            summary = controller.summary()
            jobs.append({
                "name": fleet_job.spec.name,
                "model": fleet_job.spec.model_name,
                "workers": len(fleet_job.spec.workers),
                "completed": completed,
                "stalled": fleet_job.stalled,
                "steps_done": session.cluster_steps,
                "total_steps": fleet_job.spec.total_steps,
                "duration_seconds": end - fleet_job.spec.start_delay_seconds,
                "end_time_seconds": end,
                "cost_usd": cost,
                "revocations": summary["num_revocations_seen"],
                "replacements_admitted": controller.replacements_admitted,
                "replacements_denied": controller.replacements_denied,
                "replacements_pending": controller.replacements_pending,
                "ps_mitigations": summary["extra_parameter_servers"],
                "final_active_workers": len(session.active_workers()),
            })
        pool_stats = self.pool.stats()
        return {
            "scenario": self.scenario.name,
            "epoch_hour_utc": self.simulator.epoch_hour_utc,
            "jobs_total": len(self.jobs),
            "jobs_completed": sum(1 for job in jobs if job["completed"]),
            "jobs_stalled": sum(1 for job in jobs if job["stalled"]),
            "makespan_seconds": makespan,
            "total_cost_usd": total_cost,
            "revocations": pool_stats["revocations"],
            "replacements_admitted": sum(j["replacements_admitted"] for j in jobs),
            "replacements_denied": pool_stats["replacements_denied"],
            "replacement_denial_rate": pool_stats["replacement_denial_rate"],
            "ps_mitigations": sum(j["ps_mitigations"] for j in jobs),
            "revocation_hours_local": list(self.revocation_hours_local),
            "pool": pool_stats,
            "jobs": jobs,
        }


def run_fleet(scenario: ScenarioSpec, streams: RandomStreams,
              catalog: Optional[ModelCatalog] = None,
              price_catalog: Optional[PriceCatalog] = None) -> Dict[str, Any]:
    """Simulate one fleet and return its JSON-encodable summary payload."""
    return FleetRun(scenario, streams, catalog=catalog,
                    price_catalog=price_catalog).run()


# ---------------------------------------------------------------------------
# Sweep integration.
# ---------------------------------------------------------------------------
def fleet_cell(cell: SweepCell, streams: RandomStreams,
               context: Any) -> Dict[str, Any]:
    """Sweep cell: simulate one whole fleet (one scenario replicate).

    ``context`` is the shared :class:`~repro.workloads.catalog.ModelCatalog`
    (its fingerprint keys the result cache).
    """
    scenario = ScenarioSpec.from_params(cell.params["scenario"])
    return run_fleet(scenario, streams, catalog=context)


def build_fleet_spec(scenario: ScenarioSpec, replicates: int = 2) -> SweepSpec:
    """One sweep cell per fleet replicate of ``scenario``."""
    if replicates < 1:
        raise SimulationError("replicates must be >= 1")
    return SweepSpec(f"fleet_{scenario.name}",
                     axes={"replicate": list(range(int(replicates)))},
                     fixed={"scenario": scenario.to_params()})


def run_scenario(scenario: ScenarioSpec, replicates: int = 2, seed: int = 0,
                 workers: Optional[int] = None, cache_dir: Optional[str] = None,
                 catalog: Optional[ModelCatalog] = None) -> SweepResult:
    """Run a scenario's replicates through the sweep engine.

    Serial and parallel executions are bit-identical, and with a
    ``cache_dir`` interrupted scenario sweeps resume from completed cells,
    both inherited from :class:`~repro.sweeps.SweepRunner`.
    """
    spec = build_fleet_spec(scenario, replicates)
    runner = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed)
    return runner.run(spec, fleet_cell,
                      context=catalog if catalog is not None else default_catalog())
