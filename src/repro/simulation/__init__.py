"""Discrete-event simulation substrate.

The paper measures real wall-clock behaviour of cloud GPU clusters; this
reproduction replaces wall-clock time with a discrete-event simulation.
The package provides:

* :class:`~repro.simulation.engine.Simulator` — a heap-based event loop with
  a floating-point clock expressed in seconds,
* :class:`~repro.simulation.events.Event` — scheduled callbacks with stable
  tie-breaking,
* :class:`~repro.simulation.rng.RandomStreams` — named, independently seeded
  random streams so that, e.g., revocation sampling does not perturb
  step-time noise when an unrelated feature is toggled.
"""

from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.rng import RandomStreams

__all__ = ["Simulator", "Event", "RandomStreams"]
