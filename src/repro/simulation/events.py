"""Event objects used by the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback in the simulation.

    Events are ordered by ``(time, sequence)``.  The sequence number is
    assigned by the simulator when the event is scheduled, which makes
    ordering deterministic when several events share a timestamp: events
    scheduled earlier fire earlier.

    Cancellation is *lazy*: :meth:`cancel` only flips a flag, and the
    simulator skips flagged events when they reach the top of its heap.
    The owning simulator is notified so it can count dead heap entries and
    compact the heap when cancelled events start to dominate it (see
    ``Simulator._note_cancelled``); without that, workloads that cancel
    heavily — revocation storms, sessions that finish with many in-flight
    events — would drag a growing tail of corpses through every heap
    operation.

    Attributes:
        time: Simulation time (seconds) at which the event fires.
        sequence: Monotonically increasing tie-breaker assigned at
            scheduling time.
        callback: Callable invoked as ``callback(simulator)`` when the event
            fires.  Not used for ordering.
        label: Optional human-readable label used in traces and debugging.
        cancelled: Cancelled events stay in the heap but are skipped when
            popped.
        owner: Optional opaque tag naming the entity the event belongs to.
            Training sessions tag their chunk-completion events with
            themselves, which lets multi-session drivers (the fleet
            wake-set scheduler) map the heap top to the one session whose
            fast-forward can make progress in O(1) instead of probing every
            session.  Untagged events are *foreign* to every session.  The
            same tag generalizes from sessions to *shards*: a sharded fleet
            (:mod:`repro.scenarios.shard`) gives every shard its own
            simulator, so each shard's heap holds only events owned by its
            local sessions, and the ownership invariant — the heap top
            names the one entity able to progress — holds per shard exactly
            as it does per session.
    """

    time: float
    sequence: int
    callback: Optional[Callable[[Any], None]] = field(compare=False, default=None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    owner: Optional[Any] = field(compare=False, default=None, repr=False)
    #: Simulator whose heap currently holds this event; maintained by the
    #: simulator so lazy cancellation can be accounted for.
    _owner: Optional[Any] = field(compare=False, default=None, repr=False)
    #: Whether the event still sits in its owner's heap (cleared on pop).
    _in_queue: bool = field(compare=False, default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped by the simulator."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None and self._in_queue:
            self._owner._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.sequence}, {self.label!r}, {state})"
