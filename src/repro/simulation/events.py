"""Event objects used by the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback in the simulation.

    Events are ordered by ``(time, sequence)``.  The sequence number is
    assigned by the simulator when the event is scheduled, which makes
    ordering deterministic when several events share a timestamp: events
    scheduled earlier fire earlier.

    Attributes:
        time: Simulation time (seconds) at which the event fires.
        sequence: Monotonically increasing tie-breaker assigned at
            scheduling time.
        callback: Callable invoked as ``callback(simulator)`` when the event
            fires.  Not used for ordering.
        label: Optional human-readable label used in traces and debugging.
        cancelled: Cancelled events stay in the heap but are skipped when
            popped.
    """

    time: float
    sequence: int
    callback: Optional[Callable[[Any], None]] = field(compare=False, default=None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped by the simulator."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.sequence}, {self.label!r}, {state})"
