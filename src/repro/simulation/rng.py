"""Named, independently seeded random streams.

Measurement campaigns must be reproducible (same seed, same tables) and
robust to unrelated changes: adding one extra random draw to the startup
model must not shuffle the revocation samples.  ``RandomStreams`` therefore
derives one independent :class:`numpy.random.Generator` per named purpose
from a single root seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np


class RandomStreams:
    """A factory of named, deterministic random number generators.

    Each named stream is seeded by hashing ``(root_seed, name)``, so the
    stream for ``"revocation"`` is identical regardless of how many draws
    any other stream performed.

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> a = streams.get("step_time").normal()
        >>> b = RandomStreams(seed=7).get("step_time").normal()
        >>> a == b
        True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so draws within one stream advance its state as usual.
        """
        if name not in self._generators:
            self._generators[name] = np.random.default_rng(self._derive_seed(name))
        return self._generators[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child ``RandomStreams`` with a seed derived from ``name``.

        Useful when a campaign runs many independent trials: each trial gets
        its own family of streams.
        """
        return RandomStreams(seed=self._derive_seed(name))

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with its initial state.

        Unlike :meth:`get`, the generator is not cached; every call starts
        from the same derived seed.
        """
        return np.random.default_rng(self._derive_seed(name))

    def reset(self, name: Optional[str] = None) -> None:
        """Reset one named stream (or all streams) to their initial state."""
        if name is None:
            self._generators.clear()
        else:
            self._generators.pop(name, None)
