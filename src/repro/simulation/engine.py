"""Heap-based discrete-event simulation engine.

The engine is intentionally small: a clock, a priority queue of events, and
a run loop.  Higher-level entities (cloud instances, workers, parameter
servers, the CM-DARE controller) schedule callbacks on the engine rather
than subclassing it.

Cancelled events are deleted lazily: :meth:`repro.simulation.events.Event.cancel`
flips a flag, pops skip flagged entries, and the engine compacts the heap
once cancelled entries outnumber live ones (beyond a small floor), so heavy
cancellation stays O(log n) amortized instead of growing the heap without
bound.  The engine also exposes a few small hooks used by the training
session's vectorized fast-forward path and the fleet wake-set scheduler:
:meth:`Simulator.peek_next` (what fires next, without firing it),
:meth:`Simulator.claim_sequence` / ``schedule_at(..., sequence=...)``
(pre-allocating tie-breaker sequence numbers so events replayed outside the
heap keep their exact ordering), event *ownership* tags
(``schedule(..., owner=...)``, so a multi-session driver can map the heap
top to the one session able to make fast-forward progress), and per-owner
insertion epochs (:meth:`Simulator.owner_insertions`, bumped whenever an
owner inserts an event, which lets a session cache its *disturbance
horizon* — "I am blocked behind that foreign event" — and skip even the
heap peek until the cached verdict can no longer be valid).
:meth:`Simulator.next_event_time` exposes the heap top's timestamp as a
progress lower bound, which the sharded fleet driver
(:mod:`repro.scenarios.shard`) reports across process boundaries to order
cross-shard random draws deterministically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulation.events import Event
from repro.units import wrap_hour

#: Heap entry: ``(time, sequence, event)``.  Sequence numbers are unique,
#: so tuple comparison never falls through to the event object — every
#: heap operation stays on the C fast path instead of calling the
#: dataclass ``__lt__``.
_QueueEntry = Tuple[float, int, Event]

#: Compaction threshold: the heap is rebuilt when more than this many
#: cancelled events are queued *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds.

    The simulator optionally carries an *epoch*: the wall-clock hour-of-day
    (UTC) corresponding to simulation time zero.  The epoch is used by the
    revocation model to reproduce the paper's time-of-day analysis (Fig. 9)
    without introducing real timestamps.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> sim.schedule(5.0, lambda s: fired.append(s.now))
        Event(t=5.000, seq=0, '', pending)
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: float = 0.0, epoch_hour_utc: float = 0.0):
        if start_time < 0:
            raise SimulationError("start_time must be non-negative")
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._running = False
        self._cancelled_in_queue = 0
        self._owner_insertions: Dict[int, List[int]] = {}
        self.epoch_hour_utc = wrap_hour(epoch_hour_utc)

    # ------------------------------------------------------------------
    # Clock.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def hour_of_day_utc(self, at: Optional[float] = None) -> float:
        """Return the UTC hour-of-day (``[0, 24)``) at simulation time ``at``.

        Args:
            at: Simulation time in seconds; defaults to the current time.
                Times before the epoch (negative values) and arbitrarily
                large times both wrap correctly.
        """
        time = self._now if at is None else at
        return wrap_hour(self.epoch_hour_utc + time / 3600.0)

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[["Simulator"], None],
                 label: str = "", owner: Optional[Any] = None) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Args:
            delay: Non-negative delay in seconds.
            callback: Invoked as ``callback(simulator)``.
            label: Optional label for traces.
            owner: Optional ownership tag (see :class:`Event`).

        Returns:
            The scheduled :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label=label,
                                owner=owner)

    def schedule_at(self, time: float, callback: Callable[["Simulator"], None],
                    label: str = "", sequence: Optional[int] = None,
                    owner: Optional[Any] = None) -> Event:
        """Schedule ``callback`` at an absolute simulation time.

        Args:
            time: Absolute simulation time; must not lie in the past.
            callback: Invoked as ``callback(simulator)``.
            label: Optional label for traces.
            sequence: Internal — a tie-breaker previously obtained from
                :meth:`claim_sequence`.  Used by fast-forward replay to
                reinsert events with their original ordering; omit it for
                normal scheduling.
            owner: Optional ownership tag (see :class:`Event`).  Owned
                insertions bump the owner's epoch counter
                (:meth:`owner_insertions`).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}")
        if sequence is None:
            sequence = self._sequence
            self._sequence += 1
        elif not 0 <= sequence < self._sequence:
            raise SimulationError(
                f"sequence {sequence} was never claimed (next is {self._sequence})")
        event = Event(time=float(time), sequence=sequence, callback=callback,
                      label=label, owner=owner)
        event._owner = self
        event._in_queue = True
        if owner is not None:
            key = id(owner)
            cell = self._owner_insertions.get(key)
            if cell is None:
                self._owner_insertions[key] = [1]
            else:
                cell[0] += 1
        heapq.heappush(self._queue, (event.time, sequence, event))
        return event

    def owner_insertions(self, owner: Any) -> int:
        """How many events tagged with ``owner`` were ever inserted.

        A session's disturbance-horizon cache snapshots this epoch: the
        cached "blocked behind a foreign event" verdict stays valid while
        the blocking event is still pending *and* the session inserted no
        new events of its own (a new own chunk could sort ahead of the old
        blocker).  Foreign insertions never invalidate — another foreign
        event ahead of the session's chunks keeps it just as blocked.
        """
        cell = self._owner_insertions.get(id(owner))
        return cell[0] if cell is not None else 0

    def owner_insertion_cell(self, owner: Any) -> List[int]:
        """The live one-element counter behind :meth:`owner_insertions`.

        Hot paths (a session's per-offer cache check) read the epoch as
        ``cell[0]`` instead of paying a method call per probe.
        """
        key = id(owner)
        cell = self._owner_insertions.get(key)
        if cell is None:
            cell = [0]
            self._owner_insertions[key] = cell
        return cell

    def claim_sequence(self) -> int:
        """Reserve and return the next event sequence number.

        The fast-forward path simulates chunk completions without putting
        them through the heap; claiming sequence numbers as it goes keeps
        the (time, sequence) ordering of any event it later materializes
        with ``schedule_at(..., sequence=...)`` identical to what plain
        event-by-event execution would have produced.
        """
        sequence = self._sequence
        self._sequence += 1
        return sequence

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled_in_queue

    def peek_next(self) -> Optional[Event]:
        """The next event that would fire, without firing it (or ``None``)."""
        queue = self._queue
        while queue:
            event = queue[0][2]
            if not event.cancelled:
                return event
            heapq.heappop(queue)
            event._in_queue = False
            self._cancelled_in_queue -= 1
        return None

    def next_event_time(self) -> Optional[float]:
        """When the next pending event fires, or ``None`` on an empty heap.

        This is the simulator's *progress lower bound*: every callback it
        will ever run — and therefore every random draw those callbacks
        make — happens at or after this time.  The sharded fleet driver
        (:mod:`repro.scenarios.shard`) reports it to the parent process so
        cross-shard draws can be granted in deterministic time order
        without waiting for the slowest shard to actually reach them.
        """
        event = self.peek_next()
        return None if event is None else event.time

    def pop_next(self) -> Optional[Event]:
        """Remove and return the next pending event *without firing it*.

        The fast-forward replay lifts its own due chunk events out of the
        heap with this: a true removal leaves no cancelled corpse behind,
        so short replay spans (common in fleets, where many sessions
        interleave on one heap) do not churn the heap with dead entries.
        The caller owns the event afterwards and is responsible for either
        executing its effect or re-inserting it via
        ``schedule_at(..., sequence=event.sequence)``.
        """
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[2]
            event._in_queue = False
            if not event.cancelled:
                return event
            self._cancelled_in_queue -= 1
        return None

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next pending event and return it, or ``None`` if empty."""
        while self._queue:
            time, _sequence, event = heapq.heappop(self._queue)
            event._in_queue = False
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            if time < self._now:
                raise SimulationError("event queue produced an event in the past")
            self._now = time
            if event.callback is not None:
                event.callback(self)
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties or a bound is hit.

        Args:
            until: If given, stop once the next event lies strictly beyond
                this time; the clock is advanced to ``until``.
            max_events: If given, process at most this many events (a guard
                against accidental infinite event chains).

        Returns:
            The number of events processed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                fired = self.step()
                if fired is not None:
                    processed += 1
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False
        return processed

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without firing events.

        Raises:
            SimulationError: If a pending event exists before ``time`` or the
                target time is in the past.
        """
        if time < self._now:
            raise SimulationError("cannot move the clock backwards")
        next_event = self._peek()
        if next_event is not None and next_event.time < time:
            raise SimulationError(
                "cannot advance past a pending event; call run(until=...) instead")
        self._now = float(time)

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without firing it."""
        return self.peek_next()

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping.
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for an event still in the heap."""
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue > _COMPACT_MIN_CANCELLED
                and self._cancelled_in_queue * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the live ones."""
        live: List[_QueueEntry] = []
        for entry in self._queue:
            if entry[2].cancelled:
                entry[2]._in_queue = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
