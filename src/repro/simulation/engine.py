"""Heap-based discrete-event simulation engine.

The engine is intentionally small: a clock, a priority queue of events, and
a run loop.  Higher-level entities (cloud instances, workers, parameter
servers, the CM-DARE controller) schedule callbacks on the engine rather
than subclassing it.

Cancelled events are deleted lazily: :meth:`repro.simulation.events.Event.cancel`
flips a flag, pops skip flagged entries, and the engine compacts the heap
once cancelled entries outnumber live ones (beyond a small floor), so heavy
cancellation stays O(log n) amortized instead of growing the heap without
bound.  The engine also exposes two small hooks used by the training
session's vectorized fast-forward path: :meth:`Simulator.peek_next` (what
fires next, without firing it) and :meth:`Simulator.claim_sequence` /
``schedule_at(..., sequence=...)`` (pre-allocating tie-breaker sequence
numbers so events replayed outside the heap keep their exact ordering).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.simulation.events import Event
from repro.units import wrap_hour

#: Compaction threshold: the heap is rebuilt when more than this many
#: cancelled events are queued *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds.

    The simulator optionally carries an *epoch*: the wall-clock hour-of-day
    (UTC) corresponding to simulation time zero.  The epoch is used by the
    revocation model to reproduce the paper's time-of-day analysis (Fig. 9)
    without introducing real timestamps.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> sim.schedule(5.0, lambda s: fired.append(s.now))
        Event(t=5.000, seq=0, '', pending)
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: float = 0.0, epoch_hour_utc: float = 0.0):
        if start_time < 0:
            raise SimulationError("start_time must be non-negative")
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._sequence = 0
        self._running = False
        self._cancelled_in_queue = 0
        self.epoch_hour_utc = wrap_hour(epoch_hour_utc)

    # ------------------------------------------------------------------
    # Clock.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def hour_of_day_utc(self, at: Optional[float] = None) -> float:
        """Return the UTC hour-of-day (``[0, 24)``) at simulation time ``at``.

        Args:
            at: Simulation time in seconds; defaults to the current time.
                Times before the epoch (negative values) and arbitrarily
                large times both wrap correctly.
        """
        time = self._now if at is None else at
        return wrap_hour(self.epoch_hour_utc + time / 3600.0)

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[["Simulator"], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Args:
            delay: Non-negative delay in seconds.
            callback: Invoked as ``callback(simulator)``.
            label: Optional label for traces.

        Returns:
            The scheduled :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: Callable[["Simulator"], None],
                    label: str = "", sequence: Optional[int] = None) -> Event:
        """Schedule ``callback`` at an absolute simulation time.

        Args:
            time: Absolute simulation time; must not lie in the past.
            callback: Invoked as ``callback(simulator)``.
            label: Optional label for traces.
            sequence: Internal — a tie-breaker previously obtained from
                :meth:`claim_sequence`.  Used by fast-forward replay to
                reinsert events with their original ordering; omit it for
                normal scheduling.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}")
        if sequence is None:
            sequence = self._sequence
            self._sequence += 1
        elif not 0 <= sequence < self._sequence:
            raise SimulationError(
                f"sequence {sequence} was never claimed (next is {self._sequence})")
        event = Event(time=float(time), sequence=sequence, callback=callback,
                      label=label)
        event._owner = self
        event._in_queue = True
        heapq.heappush(self._queue, event)
        return event

    def claim_sequence(self) -> int:
        """Reserve and return the next event sequence number.

        The fast-forward path simulates chunk completions without putting
        them through the heap; claiming sequence numbers as it goes keeps
        the (time, sequence) ordering of any event it later materializes
        with ``schedule_at(..., sequence=...)`` identical to what plain
        event-by-event execution would have produced.
        """
        sequence = self._sequence
        self._sequence += 1
        return sequence

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled_in_queue

    def peek_next(self) -> Optional[Event]:
        """The next event that would fire, without firing it (or ``None``)."""
        return self._peek()

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next pending event and return it, or ``None`` if empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event._in_queue = False
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            if event.time < self._now:
                raise SimulationError("event queue produced an event in the past")
            self._now = event.time
            if event.callback is not None:
                event.callback(self)
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties or a bound is hit.

        Args:
            until: If given, stop once the next event lies strictly beyond
                this time; the clock is advanced to ``until``.
            max_events: If given, process at most this many events (a guard
                against accidental infinite event chains).

        Returns:
            The number of events processed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                fired = self.step()
                if fired is not None:
                    processed += 1
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False
        return processed

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without firing events.

        Raises:
            SimulationError: If a pending event exists before ``time`` or the
                target time is in the past.
        """
        if time < self._now:
            raise SimulationError("cannot move the clock backwards")
        next_event = self._peek()
        if next_event is not None and next_event.time < time:
            raise SimulationError(
                "cannot advance past a pending event; call run(until=...) instead")
        self._now = float(time)

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without firing it."""
        while self._queue and self._queue[0].cancelled:
            popped = heapq.heappop(self._queue)
            popped._in_queue = False
            self._cancelled_in_queue -= 1
        return self._queue[0] if self._queue else None

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping.
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for an event still in the heap."""
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue > _COMPACT_MIN_CANCELLED
                and self._cancelled_in_queue * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the live ones."""
        live: List[Event] = []
        for event in self._queue:
            if event.cancelled:
                event._in_queue = False
            else:
                live.append(event)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
