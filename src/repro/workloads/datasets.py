"""Dataset specifications.

The paper trains every model on CIFAR-10 because its measurements target
training *speed*, not final accuracy.  A dataset here is a static
description: image shape, number of examples, and on-disk size, which the
training simulator uses for batch sizing and for estimating the dataset
download component of worker-replacement overhead (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """A static description of a training dataset.

    Attributes:
        name: Dataset name.
        image_shape: ``(height, width, channels)`` of each example.
        num_train_examples: Number of training examples.
        num_eval_examples: Number of held-out examples.
        num_classes: Number of target classes.
        size_bytes: Approximate on-disk size of the packaged dataset.
    """

    name: str
    image_shape: Tuple[int, int, int]
    num_train_examples: int
    num_eval_examples: int
    num_classes: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.num_train_examples <= 0 or self.num_classes <= 0:
            raise ConfigurationError("dataset must have positive examples and classes")

    @property
    def total_examples(self) -> int:
        """Training plus evaluation examples."""
        return self.num_train_examples + self.num_eval_examples

    def steps_per_epoch(self, batch_size: int) -> int:
        """Number of training steps needed to cover the training set once."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        return max(1, self.num_train_examples // batch_size)

    def examples_for_steps(self, steps: int, batch_size: int) -> int:
        """Number of examples processed by ``steps`` steps of ``batch_size``."""
        if steps < 0:
            raise ConfigurationError("steps must be non-negative")
        return steps * batch_size


#: CIFAR-10: 60K 32x32 colour images in 10 classes (50K train / 10K eval).
#: The on-disk size matches the ~170 MB packaged binary version.
CIFAR10 = DatasetSpec(
    name="cifar10",
    image_shape=(32, 32, 3),
    num_train_examples=50_000,
    num_eval_examples=10_000,
    num_classes=10,
    size_bytes=170 * 1024 * 1024,
)

#: ImageNet-1k specification.  The paper explicitly does not use ImageNet
#: (training-speed measurements do not need it) but the spec is provided for
#: users who want to scale workloads up.
IMAGENET = DatasetSpec(
    name="imagenet",
    image_shape=(224, 224, 3),
    num_train_examples=1_281_167,
    num_eval_examples=50_000,
    num_classes=1000,
    size_bytes=150 * 1024 * 1024 * 1024,
)
