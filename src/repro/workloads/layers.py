"""Layer descriptors with analytic FLOPs and parameter counts.

Each layer knows its parameter count, the number of FLOPs required to
process one image (forward pass), and how many trainable tensors it
contributes to a checkpoint.  Following common convention (and the paper's
use of the TensorFlow profiler), one multiply-accumulate counts as two
FLOPs, and training FLOPs are estimated as forward + backward ≈ 3x forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Multiplier applied to forward-pass FLOPs to estimate a full training step
#: (forward + gradient computation).  The constant ratio does not affect any
#: of the paper's conclusions because model complexity enters the regression
#: models as a single scalar feature.
TRAINING_FLOPS_MULTIPLIER = 3.0


@dataclass(frozen=True)
class LayerStats:
    """Aggregate statistics contributed by a single layer.

    Attributes:
        params: Number of trainable parameters.
        forward_flops: FLOPs for a forward pass over one image.
        tensors: Number of trainable tensors (checkpoint entries).
        output_shape: ``(height, width, channels)`` of the layer output.
    """

    params: int
    forward_flops: float
    tensors: int
    output_shape: Tuple[int, int, int]


class Layer:
    """Base class for all layer descriptors."""

    name: str = "layer"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        """Return the layer statistics given an input shape ``(H, W, C)``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Conv2D(Layer):
    """A 2D convolution with square kernels and 'same' padding.

    Attributes:
        filters: Number of output channels.
        kernel_size: Side length of the square kernel.
        stride: Spatial stride (the same in both dimensions).
        use_bias: Whether a bias vector is included.
    """

    filters: int
    kernel_size: int = 3
    stride: int = 1
    use_bias: bool = False
    name: str = "conv2d"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        height, width, channels = input_shape
        out_h = max(1, height // self.stride)
        out_w = max(1, width // self.stride)
        kernel_params = self.kernel_size * self.kernel_size * channels * self.filters
        bias_params = self.filters if self.use_bias else 0
        params = kernel_params + bias_params
        # Two FLOPs per multiply-accumulate.
        flops = 2.0 * kernel_params * out_h * out_w
        if self.use_bias:
            flops += out_h * out_w * self.filters
        tensors = 1 + (1 if self.use_bias else 0)
        return LayerStats(params=params, forward_flops=flops, tensors=tensors,
                          output_shape=(out_h, out_w, self.filters))


@dataclass(frozen=True)
class BatchNorm(Layer):
    """Batch normalization: two trainable tensors (scale, offset)."""

    name: str = "batch_norm"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        height, width, channels = input_shape
        params = 2 * channels
        # Normalize, scale and shift: a handful of FLOPs per activation.
        flops = 4.0 * height * width * channels
        return LayerStats(params=params, forward_flops=flops, tensors=2,
                          output_shape=input_shape)


@dataclass(frozen=True)
class Activation(Layer):
    """Elementwise activation (ReLU by default); no trainable parameters."""

    kind: str = "relu"
    name: str = "activation"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        height, width, channels = input_shape
        flops = 1.0 * height * width * channels
        return LayerStats(params=0, forward_flops=flops, tensors=0,
                          output_shape=input_shape)


@dataclass(frozen=True)
class Pooling(Layer):
    """Average or max pooling with a square window.

    Attributes:
        pool_size: Side length of the pooling window (also used as stride).
        kind: ``"avg"`` or ``"max"``.
        global_pool: If true, the window covers the whole feature map and the
            output is ``1 x 1 x C``.
    """

    pool_size: int = 2
    kind: str = "avg"
    global_pool: bool = False
    name: str = "pooling"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        height, width, channels = input_shape
        if self.global_pool:
            out_h = out_w = 1
            flops = 1.0 * height * width * channels
        else:
            out_h = max(1, height // self.pool_size)
            out_w = max(1, width // self.pool_size)
            flops = 1.0 * out_h * out_w * channels * self.pool_size * self.pool_size
        return LayerStats(params=0, forward_flops=flops, tensors=0,
                          output_shape=(out_h, out_w, channels))


@dataclass(frozen=True)
class Dense(Layer):
    """A fully connected layer applied to the flattened input."""

    units: int
    use_bias: bool = True
    name: str = "dense"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        height, width, channels = input_shape
        fan_in = height * width * channels
        params = fan_in * self.units + (self.units if self.use_bias else 0)
        flops = 2.0 * fan_in * self.units
        if self.use_bias:
            flops += self.units
        tensors = 1 + (1 if self.use_bias else 0)
        return LayerStats(params=params, forward_flops=flops, tensors=tensors,
                          output_shape=(1, 1, self.units))


@dataclass(frozen=True)
class Shortcut(Layer):
    """A residual shortcut.

    When the number of channels or the stride changes across a residual
    block, ResNet inserts a 1x1 projection convolution; otherwise the
    shortcut is an identity addition.

    Attributes:
        filters: Number of output channels after the shortcut.
        stride: Spatial stride of the projection, if any.
        projection: Whether a 1x1 projection convolution is used.
    """

    filters: int
    stride: int = 1
    projection: bool = False
    name: str = "shortcut"

    def stats(self, input_shape: Tuple[int, int, int]) -> LayerStats:
        height, width, channels = input_shape
        out_h = max(1, height // self.stride)
        out_w = max(1, width // self.stride)
        if self.projection:
            params = channels * self.filters
            flops = 2.0 * params * out_h * out_w
            tensors = 1
        else:
            params = 0
            # Elementwise addition of the identity branch.
            flops = 1.0 * out_h * out_w * self.filters
            tensors = 0
        return LayerStats(params=params, forward_flops=flops, tensors=tensors,
                          output_shape=(out_h, out_w, self.filters))
