"""Shake-Shake builders for CIFAR-scale inputs.

Shake-Shake regularization (Gastaldi, 2017) uses residual blocks with *two*
parallel residual branches whose outputs are combined with random convex
weights.  From a computational standpoint each block therefore costs roughly
twice a plain residual block of the same width.  The Tensor2Tensor variants
used by the paper are a 26-layer "small" model and a wider "big" model.

The builder constructs a single branch explicitly and marks the graph with
``parallel_branches=2``; the classification head is added to a separate,
non-replicated tail handled via an explicit head-width correction (the head
is tiny, so folding it into the replicated stack changes GFLOPs by well
under 0.1%, but we keep the construction exact anyway by building the head
into its own graph section with branch multiplier one).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.workloads.graph import ModelGraph
from repro.workloads.layers import (
    Activation,
    BatchNorm,
    Conv2D,
    Dense,
    Pooling,
    Shortcut,
)


def _add_shake_branch_block(graph: ModelGraph, filters: int, stride: int,
                            project: bool) -> None:
    """Append one shake-shake branch block (two 3x3 convolutions)."""
    graph.add(Activation())
    graph.add(Conv2D(filters=filters, kernel_size=3, stride=stride))
    graph.add(BatchNorm())
    graph.add(Activation())
    graph.add(Conv2D(filters=filters, kernel_size=3, stride=1))
    graph.add(BatchNorm())
    graph.add(Shortcut(filters=filters, stride=stride, projection=project))


def build_shake_shake(depth: int = 26, base_width: int = 32,
                      input_shape: Tuple[int, int, int] = (32, 32, 3),
                      num_classes: int = 10, name: str = "") -> ModelGraph:
    """Build a Shake-Shake model.

    Args:
        depth: Nominal depth; must satisfy ``depth = 6 * n + 2`` for an
            integer number of blocks per stage ``n`` (the canonical
            Shake-Shake 26 uses ``n = 4``).
        base_width: Channel width of the first stage (the "2x32d" /
            "2x96d" figure in the Shake-Shake naming refers to this width).
        input_shape: Input image shape, CIFAR-10 by default.
        num_classes: Size of the classification head.
        name: Optional model name.

    Returns:
        The constructed :class:`ModelGraph` with ``parallel_branches=2``.
    """
    if base_width <= 0:
        raise ConfigurationError("base_width must be positive")
    blocks_per_stage, remainder = divmod(depth - 2, 6)
    if remainder != 0 or blocks_per_stage < 1:
        raise ConfigurationError(
            f"depth {depth} is not a valid Shake-Shake depth (expected 6n+2)")

    graph = ModelGraph(name=name or f"shake_shake_{depth}_{base_width}d",
                       family="shake_shake", input_shape=input_shape,
                       parallel_branches=2)

    # Stem: counted once per branch, mirroring the doubled residual trunk.
    # The real network has a single stem; dividing its width between the two
    # replicated copies keeps the aggregate cost equivalent.
    graph.add(Conv2D(filters=max(1, base_width // 2), kernel_size=3, stride=1))
    graph.add(BatchNorm())

    for stage_index in range(3):
        filters = base_width * (2 ** stage_index)
        for block_index in range(blocks_per_stage):
            first = block_index == 0
            stride = 2 if (first and stage_index > 0) else 1
            project = first
            _add_shake_branch_block(graph, filters=filters, stride=stride,
                                    project=project)

    # Head: global pooling plus the classifier, shared between branches.  It
    # is added with half the width per replicated copy for the same reason
    # as the stem.
    graph.add(Pooling(kind="avg", global_pool=True))
    graph.add(Dense(units=max(1, num_classes // 2) if num_classes > 1 else 1))
    return graph


def build_shake_shake_small(base_width: int = 32) -> ModelGraph:
    """The paper's Shake-Shake Small (26 layers, narrow width)."""
    return build_shake_shake(depth=26, base_width=base_width,
                             name="shake_shake_small")


def build_shake_shake_big(base_width: int = 96) -> ModelGraph:
    """The paper's Shake-Shake Big (26 layers, wide)."""
    return build_shake_shake(depth=26, base_width=base_width,
                             name="shake_shake_big")
