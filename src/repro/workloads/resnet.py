"""ResNet builders for CIFAR-scale inputs.

The paper uses the Tensor2Tensor ResNet implementations ("ResNet-15" and
"ResNet-32") plus custom variants obtained by changing the number of hidden
layers and the size of each hidden layer.  This module builds CIFAR-style
ResNets: an initial 3x3 convolution, three stages of residual blocks (the
spatial resolution halves and the channel width doubles at each stage
boundary), global average pooling, and a dense classification head.

The total layer count follows the standard CIFAR ResNet formula
``depth = 6 * blocks_per_stage + 2`` (+1 when counting the pooling layer the
way Tensor2Tensor does, which is how a "ResNet-15" arises from
``blocks_per_stage=2``).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.workloads.graph import ModelGraph
from repro.workloads.layers import (
    Activation,
    BatchNorm,
    Conv2D,
    Dense,
    Pooling,
    Shortcut,
)


def _add_residual_block(graph: ModelGraph, filters: int, stride: int,
                        project: bool) -> None:
    """Append one basic residual block (two 3x3 convolutions) to ``graph``."""
    graph.add(Conv2D(filters=filters, kernel_size=3, stride=stride))
    graph.add(BatchNorm())
    graph.add(Activation())
    graph.add(Conv2D(filters=filters, kernel_size=3, stride=1))
    graph.add(BatchNorm())
    graph.add(Shortcut(filters=filters, stride=stride, projection=project))
    graph.add(Activation())


def build_resnet(depth: int, base_width: int = 32,
                 input_shape: Tuple[int, int, int] = (32, 32, 3),
                 num_classes: int = 10, name: str = "") -> ModelGraph:
    """Build a CIFAR-style ResNet.

    Args:
        depth: Nominal depth; must satisfy ``depth = 6 * n + 2`` or
            ``6 * n + 3`` for an integer number of blocks per stage ``n``
            (the paper's ResNet-15 corresponds to ``n = 2`` and ResNet-32 to
            ``n = 5``).
        base_width: Channel width of the first stage; stages two and three
            use ``2x`` and ``4x`` this width.
        input_shape: Input image shape, CIFAR-10 by default.
        num_classes: Size of the classification head.
        name: Optional model name; defaults to ``resnet_<depth>``.

    Returns:
        The constructed :class:`ModelGraph`.

    Raises:
        ConfigurationError: If the depth does not map to a whole number of
            residual blocks per stage or the width is not positive.
    """
    if base_width <= 0:
        raise ConfigurationError("base_width must be positive")
    blocks_per_stage, remainder = divmod(depth - 2, 6)
    if remainder not in (0, 1) or blocks_per_stage < 1:
        raise ConfigurationError(
            f"depth {depth} is not a valid CIFAR ResNet depth (expected 6n+2 or 6n+3)")

    graph = ModelGraph(name=name or f"resnet_{depth}", family="resnet",
                       input_shape=input_shape)

    # Stem.
    graph.add(Conv2D(filters=base_width, kernel_size=3, stride=1))
    graph.add(BatchNorm())
    graph.add(Activation())

    # Three stages with doubling width and halving resolution.
    for stage_index in range(3):
        filters = base_width * (2 ** stage_index)
        for block_index in range(blocks_per_stage):
            first = block_index == 0
            stride = 2 if (first and stage_index > 0) else 1
            project = first and stage_index > 0
            _add_residual_block(graph, filters=filters, stride=stride, project=project)

    # Head.
    graph.add(Pooling(kind="avg", global_pool=True))
    graph.add(Dense(units=num_classes))
    return graph


def build_resnet_15(base_width: int = 32) -> ModelGraph:
    """The paper's ResNet-15 (two residual blocks per stage)."""
    return build_resnet(depth=15, base_width=base_width, name="resnet_15")


def build_resnet_32(base_width: int = 32) -> ModelGraph:
    """The paper's ResNet-32 (five residual blocks per stage)."""
    return build_resnet(depth=32, base_width=base_width, name="resnet_32")
