"""Generic custom-CNN builder.

The paper generates sixteen additional CNN variants "by varying the number
of hidden layers and the size of each hidden layer".  Beyond the fixed
catalog, this module gives users the same knob: a plain convolutional
network whose depth, width, and stage count are free parameters, so new
complexity points can be added to a measurement campaign without touching
the ResNet/Shake-Shake builders.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.workloads.graph import ModelGraph
from repro.workloads.layers import Activation, BatchNorm, Conv2D, Dense, Pooling


def build_plain_cnn(num_stages: int = 3, blocks_per_stage: int = 2,
                    base_width: int = 32, kernel_size: int = 3,
                    input_shape: Tuple[int, int, int] = (32, 32, 3),
                    num_classes: int = 10, name: str = "") -> ModelGraph:
    """Build a plain (non-residual) convolutional network.

    The network has ``num_stages`` stages; each stage halves the spatial
    resolution (after the first) and doubles the channel width, and contains
    ``blocks_per_stage`` conv-BN-ReLU blocks.  A global-average-pooling
    classifier head follows.

    Args:
        num_stages: Number of resolution stages (1-5 for 32x32 inputs).
        blocks_per_stage: Convolution blocks per stage.
        base_width: Channel width of the first stage.
        kernel_size: Convolution kernel size.
        input_shape: Input image shape.
        num_classes: Classifier width.
        name: Optional model name; a descriptive default is generated.

    Returns:
        The constructed :class:`ModelGraph`.
    """
    if num_stages < 1 or num_stages > 5:
        raise ConfigurationError("num_stages must be between 1 and 5")
    if blocks_per_stage < 1:
        raise ConfigurationError("blocks_per_stage must be >= 1")
    if base_width < 1:
        raise ConfigurationError("base_width must be >= 1")
    if kernel_size < 1 or kernel_size % 2 == 0:
        raise ConfigurationError("kernel_size must be a positive odd integer")

    depth = num_stages * blocks_per_stage + 1
    graph = ModelGraph(name=name or f"plain_cnn_d{depth}_w{base_width}",
                       family="plain_cnn", input_shape=input_shape)
    for stage_index in range(num_stages):
        filters = base_width * (2 ** stage_index)
        for block_index in range(blocks_per_stage):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            graph.add(Conv2D(filters=filters, kernel_size=kernel_size, stride=stride))
            graph.add(BatchNorm())
            graph.add(Activation())
    graph.add(Pooling(kind="avg", global_pool=True))
    graph.add(Dense(units=num_classes))
    return graph


def complexity_sweep(base_width: int = 16, widths: Tuple[int, ...] = (1, 2, 3, 4),
                     depths: Tuple[int, ...] = (2, 4, 6)) -> Tuple[ModelGraph, ...]:
    """Generate a sweep of plain CNNs spanning a wide complexity range.

    Args:
        base_width: Base channel width multiplied by each width factor.
        widths: Width multipliers.
        depths: Blocks per stage for each depth point.

    Returns:
        The generated model graphs, ordered by increasing complexity.
    """
    graphs = [build_plain_cnn(blocks_per_stage=depth, base_width=base_width * width)
              for depth in depths for width in widths]
    return tuple(sorted(graphs, key=lambda graph: graph.gflops))
