"""Model graphs: ordered layer stacks with aggregate statistics.

A :class:`ModelGraph` is the reproduction's stand-in for a Tensor2Tensor
model definition.  It is a plain description (no tensors are allocated) from
which the profiler computes FLOPs, parameter counts, and checkpoint sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.workloads.layers import Layer, LayerStats, TRAINING_FLOPS_MULTIPLIER


@dataclass
class ModelGraph:
    """A CNN described as an ordered sequence of layer descriptors.

    Attributes:
        name: Model name, e.g. ``"resnet_32"``.
        family: Model family, e.g. ``"resnet"`` or ``"shake_shake"``.
        input_shape: ``(height, width, channels)`` of the input images.
        layers: Ordered layer descriptors.
        parallel_branches: Number of parallel branches the layer stack is
            replicated into (Shake-Shake uses two residual branches per
            block); the classification head is excluded from replication by
            the builders, which account for it separately.
    """

    name: str
    family: str
    input_shape: Tuple[int, int, int]
    layers: List[Layer] = field(default_factory=list)
    parallel_branches: int = 1

    def __post_init__(self) -> None:
        if len(self.input_shape) != 3 or any(d <= 0 for d in self.input_shape):
            raise ConfigurationError(f"invalid input shape {self.input_shape!r}")
        if self.parallel_branches < 1:
            raise ConfigurationError("parallel_branches must be >= 1")

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    def add(self, layer: Layer) -> "ModelGraph":
        """Append a layer and return ``self`` (for chaining)."""
        self.layers.append(layer)
        return self

    def extend(self, layers: Iterable[Layer]) -> "ModelGraph":
        """Append several layers and return ``self``."""
        self.layers.extend(layers)
        return self

    # ------------------------------------------------------------------
    # Aggregate statistics.
    # ------------------------------------------------------------------
    def layer_stats(self) -> Sequence[LayerStats]:
        """Per-layer statistics, propagating shapes through the stack."""
        stats: List[LayerStats] = []
        shape = self.input_shape
        for layer in self.layers:
            layer_stat = layer.stats(shape)
            stats.append(layer_stat)
            shape = layer_stat.output_shape
        return stats

    @property
    def num_layers(self) -> int:
        """Number of layer descriptors in the graph."""
        return len(self.layers)

    @property
    def params(self) -> int:
        """Total number of trainable parameters (all branches)."""
        total = sum(stat.params for stat in self.layer_stats())
        return int(total * self.parallel_branches)

    @property
    def num_tensors(self) -> int:
        """Total number of trainable tensors (checkpoint entries)."""
        total = sum(stat.tensors for stat in self.layer_stats())
        return int(total * self.parallel_branches)

    @property
    def forward_flops(self) -> float:
        """Forward-pass FLOPs for a single image (all branches)."""
        total = sum(stat.forward_flops for stat in self.layer_stats())
        return float(total * self.parallel_branches)

    @property
    def training_flops(self) -> float:
        """Estimated training FLOPs for a single image (forward + backward)."""
        return self.forward_flops * TRAINING_FLOPS_MULTIPLIER

    @property
    def gflops(self) -> float:
        """Model complexity in GFLOPs per image, the paper's ``Cm`` feature."""
        return self.training_flops / 1e9

    def parameter_bytes(self, bytes_per_param: int = 4) -> int:
        """Size of the raw parameters in bytes (float32 by default)."""
        return self.params * bytes_per_param

    def summary(self) -> str:
        """A human-readable, multi-line summary of the graph."""
        lines = [
            f"Model {self.name} (family={self.family}, branches={self.parallel_branches})",
            f"  input shape : {self.input_shape}",
            f"  layers      : {self.num_layers}",
            f"  parameters  : {self.params:,}",
            f"  tensors     : {self.num_tensors}",
            f"  complexity  : {self.gflops:.3f} GFLOPs/image",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ModelGraph(name={self.name!r}, layers={self.num_layers}, "
                f"gflops={self.gflops:.3f})")
