"""Checkpoint file-size model.

TensorFlow checkpoints consist of three files (Section IV-A of the paper):

* the **data** file holding the serialized variable values (model weights
  plus optimizer slot variables),
* the **index** file mapping tensor names to offsets in the data file, and
* the **meta** file holding the serialized graph definition.

The paper observes that index and meta file sizes are highly correlated
with the number of tensors in the model, and uses all three sizes (plus
their sum) as regression features for predicting checkpoint time
(Table IV).  This module computes the three sizes from a model graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.graph import ModelGraph

#: Bytes per trainable parameter value (float32).
BYTES_PER_PARAM = 4

#: Optimizer slot variables stored alongside each weight tensor.  The
#: Tensor2Tensor trainers used by the paper default to Adam-style optimizers
#: which keep two moment estimates per parameter, tripling the data file.
OPTIMIZER_SLOTS_PER_PARAM = 2

#: Index file: per-tensor bookkeeping (name, dtype, shape, offset, CRC).
INDEX_BYTES_PER_TENSOR = 96
INDEX_BYTES_BASE = 4 * 1024

#: Meta file: serialized graph definition.  It grows with the number of
#: tensors/ops but has a sizeable fixed component.
META_BYTES_PER_TENSOR = 6 * 1024
META_BYTES_BASE = 256 * 1024


@dataclass(frozen=True)
class CheckpointFiles:
    """Sizes (in bytes) of the three files produced by one checkpoint.

    Attributes:
        data_bytes: Variable values (weights plus optimizer slots), ``Sd``.
        index_bytes: Tensor index, ``Si``.
        meta_bytes: Graph definition, ``Sm``.
    """

    data_bytes: int
    index_bytes: int
    meta_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total checkpoint size ``Sc = Sd + Si + Sm``."""
        return self.data_bytes + self.index_bytes + self.meta_bytes

    @property
    def data_mb(self) -> float:
        """Data file size in MB."""
        return self.data_bytes / (1024 * 1024)

    @property
    def index_mb(self) -> float:
        """Index file size in MB."""
        return self.index_bytes / (1024 * 1024)

    @property
    def meta_mb(self) -> float:
        """Meta file size in MB."""
        return self.meta_bytes / (1024 * 1024)

    @property
    def total_mb(self) -> float:
        """Total checkpoint size in MB."""
        return self.total_bytes / (1024 * 1024)


def checkpoint_files_for(graph: ModelGraph,
                         optimizer_slots: int = OPTIMIZER_SLOTS_PER_PARAM) -> CheckpointFiles:
    """Compute the checkpoint file sizes for a model graph.

    Args:
        graph: The model graph being checkpointed.
        optimizer_slots: Number of optimizer slot variables kept per
            parameter (2 for Adam, 1 for Momentum, 0 for plain SGD).

    Returns:
        A :class:`CheckpointFiles` record.
    """
    params = graph.params
    tensors = graph.num_tensors
    data_bytes = params * BYTES_PER_PARAM * (1 + optimizer_slots)
    # Each optimizer slot adds one tensor per weight tensor to the index.
    index_tensors = tensors * (1 + optimizer_slots)
    index_bytes = INDEX_BYTES_BASE + index_tensors * INDEX_BYTES_PER_TENSOR
    meta_bytes = META_BYTES_BASE + tensors * META_BYTES_PER_TENSOR
    return CheckpointFiles(data_bytes=int(data_bytes), index_bytes=int(index_bytes),
                           meta_bytes=int(meta_bytes))
