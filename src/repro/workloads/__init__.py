"""Workload substrate: CNN model graphs, FLOPs profiling, checkpoint sizing.

The paper trains twenty convolutional neural networks (two ResNets, two
Shake-Shake variants, and sixteen custom variants) on CIFAR-10 and uses the
TensorFlow profiler to obtain each model's complexity in FLOPs.  This
package replaces TensorFlow/Tensor2Tensor with an analytic layer-level model
description:

* :mod:`repro.workloads.layers` — layer descriptors with exact FLOPs and
  parameter counts,
* :mod:`repro.workloads.graph` — :class:`ModelGraph`, an ordered collection
  of layers with aggregate statistics,
* :mod:`repro.workloads.resnet` / :mod:`repro.workloads.shake_shake` —
  builders for the named model families,
* :mod:`repro.workloads.catalog` — the twenty-model catalog used throughout
  the measurement campaigns,
* :mod:`repro.workloads.profiler` — the TFProf substitute that reports
  GFLOPs per image,
* :mod:`repro.workloads.checkpoints` — checkpoint file-size model (data,
  index, and meta files),
* :mod:`repro.workloads.datasets` — dataset specifications (CIFAR-10).
"""

from repro.workloads.datasets import CIFAR10, DatasetSpec
from repro.workloads.graph import ModelGraph
from repro.workloads.catalog import ModelCatalog, default_catalog
from repro.workloads.checkpoints import CheckpointFiles, checkpoint_files_for
from repro.workloads.profiler import ModelProfile, profile_model
from repro.workloads.resnet import build_resnet
from repro.workloads.shake_shake import build_shake_shake
from repro.workloads.custom import build_plain_cnn, complexity_sweep

__all__ = [
    "CIFAR10",
    "DatasetSpec",
    "ModelGraph",
    "ModelCatalog",
    "default_catalog",
    "CheckpointFiles",
    "checkpoint_files_for",
    "ModelProfile",
    "profile_model",
    "build_resnet",
    "build_shake_shake",
    "build_plain_cnn",
    "complexity_sweep",
]
