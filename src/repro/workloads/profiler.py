"""Model profiler: the reproduction's substitute for TensorFlow's TFProf.

The paper derives each CNN's complexity (GFLOPs per training image) from
the built-in TensorFlow profiler and uses it as the key feature ``Cm`` of
its regression models.  Here the same quantity is computed analytically
from the :class:`~repro.workloads.graph.ModelGraph` layer descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.checkpoints import CheckpointFiles, checkpoint_files_for
from repro.workloads.graph import ModelGraph


@dataclass(frozen=True)
class ModelProfile:
    """Profiling results for a single model.

    Attributes:
        name: Model name.
        family: Model family name.
        gflops: Training complexity in GFLOPs per image (feature ``Cm``).
        params: Number of trainable parameters.
        num_tensors: Number of trainable tensors.
        num_layers: Number of layer descriptors.
        checkpoint: Checkpoint file sizes produced when saving the model.
    """

    name: str
    family: str
    gflops: float
    params: int
    num_tensors: int
    num_layers: int
    checkpoint: CheckpointFiles

    @property
    def parameter_bytes(self) -> int:
        """Raw float32 parameter size in bytes (gradient payload per step)."""
        return self.params * 4

    @property
    def checkpoint_bytes(self) -> int:
        """Total checkpoint size in bytes (data + index + meta files)."""
        return self.checkpoint.total_bytes

    def normalized_computation(self, gpu_teraflops: float) -> float:
        """The paper's computation ratio ``C = Cm / Cgpu`` (unnormalized).

        Args:
            gpu_teraflops: GPU computational capacity in teraflops.
        """
        return self.gflops / gpu_teraflops


def profile_model(graph: ModelGraph) -> ModelProfile:
    """Profile a model graph, mirroring what TFProf reports in the paper.

    Args:
        graph: The model graph to profile.

    Returns:
        A :class:`ModelProfile` with complexity, parameter, and checkpoint
        statistics.
    """
    return ModelProfile(
        name=graph.name,
        family=graph.family,
        gflops=graph.gflops,
        params=graph.params,
        num_tensors=graph.num_tensors,
        num_layers=graph.num_layers,
        checkpoint=checkpoint_files_for(graph),
    )
