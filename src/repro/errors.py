"""Exception hierarchy for the CM-DARE reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so
that callers can catch library-specific failures with a single clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid.

    Examples include a negative worker count, an unknown GPU type name, or
    a checkpoint interval of zero steps.
    """


class UnknownGPUError(ConfigurationError):
    """Raised when a GPU type name is not present in the GPU catalog."""

    def __init__(self, name: str, known: tuple = ()):  # type: ignore[assignment]
        self.name = name
        self.known = tuple(known)
        message = f"unknown GPU type {name!r}"
        if self.known:
            message += f"; known types: {', '.join(self.known)}"
        super().__init__(message)


class UnknownRegionError(ConfigurationError):
    """Raised when a region name is not present in the region catalog."""

    def __init__(self, name: str, known: tuple = ()):  # type: ignore[assignment]
        self.name = name
        self.known = tuple(known)
        message = f"unknown region {name!r}"
        if self.known:
            message += f"; known regions: {', '.join(self.known)}"
        super().__init__(message)


class UnknownModelError(ConfigurationError):
    """Raised when a CNN model name is not present in the model catalog."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class CapacityError(SimulationError):
    """Raised when the simulated cloud provider cannot satisfy a request.

    The simulated provider enforces per-region/per-GPU quotas similar to the
    per-account quotas Google Cloud enforces on preemptible GPU servers.
    """


class InstanceStateError(SimulationError):
    """Raised when an operation is invalid for an instance's current state."""


class TrainingError(ReproError):
    """Raised when a training session cannot start or continue."""


class ModelingError(ReproError):
    """Raised when a performance model cannot be fitted or applied."""


class NotFittedError(ModelingError):
    """Raised when ``predict`` is called on a model that was never fitted."""


class DataError(ReproError):
    """Raised when a measurement dataset is malformed or inconsistent."""
