"""Run one fleet across worker processes — with bit-identical payloads.

A revocation storm spread over the four K80 regions forms four connected
components of the job/cell graph, so the sharded driver
(:mod:`repro.scenarios.shard`) can partition it across processes: each
shard simulates its own jobs and pool cells on its own wake-set loop,
while the parent serves the one shared revocation stream in deterministic
``(time, job rank)`` order.  Sharding is an execution knob, not a modeling
decision: the payload is bit-identical to the single-process run at every
shard count (the same knob is available fleet-wide as
``REPRO_FLEET_SHARDS`` or ``python -m repro.scenarios run ... --shards N``).

Run with::

    python examples/fleet_sharded.py
"""

from __future__ import annotations

import json
import time

from repro.analysis.tables import format_table
from repro.scenarios.shard import ShardedFleetRun, partition_scenario
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.rng import RandomStreams

REGIONS = ("us-east1", "us-central1", "us-west1", "europe-west1")


def four_region_storm(jobs: int = 16, total_steps: int = 20_000) -> ScenarioSpec:
    """The revocation storm, spread evenly over the four K80 regions."""
    specs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=total_steps,
                workers=(("k80", REGIONS[index % len(REGIONS)]),) * 3,
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(jobs))
    return ScenarioSpec(
        name="four_region_storm",
        description="revocation storm spread over the four K80 regions",
        jobs=specs,
        pool_capacity={("k80", region): jobs for region in REGIONS},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5)


def run_with(scenario: ScenarioSpec, shards: int):
    run = ShardedFleetRun(scenario, RandomStreams(seed=3), shards=shards)
    started = time.perf_counter()
    payload = run.run()
    return payload, time.perf_counter() - started, run


def main() -> None:
    scenario = four_region_storm()

    groups = partition_scenario(scenario, 4)
    print("Partition (connected components, greedy-balanced):")
    for group in groups:
        cells = ", ".join(f"{gpu}/{region}" for gpu, region in group.cells)
        print(f"  shard {group.index}: jobs {list(group.job_indices)} "
              f"owning [{cells}] (weight {group.weight})")
    print()

    rows = []
    reference = None
    for shards in (1, 2, 4):
        payload, wall, run = run_with(scenario, shards)
        if reference is None:
            reference = payload
        identical = json.dumps(payload, sort_keys=True) == \
            json.dumps(reference, sort_keys=True)
        rows.append([str(shards), str(len(run.groups)),
                     f"{run.events_processed:,}", f"{wall:.2f}",
                     "yes" if identical else "NO"])

    print(format_table(
        ["shards", "groups", "events processed", "wall (s)",
         "payload == single-process"],
        rows))
    print()
    print(f"fleet: {reference['jobs_completed']}/{reference['jobs_total']} "
          f"jobs completed, {reference['revocations']} revocations, "
          f"makespan {reference['makespan_seconds'] / 3600.0:.2f} h, "
          f"total cost ${reference['total_cost_usd']:.2f}")


if __name__ == "__main__":
    main()
