"""The placement service, end to end.

Stands up a :class:`repro.serve.PlacementService` over a live transient
pool, warms the vectorized score table (every ``(gpu, region, hour)``
cell precomputed once), then walks through the serving story:

* a **live query** ranked against the current pool snapshot, answered
  again from the decision cache while the pool stays put;
* **pool churn** — acquiring and revoking slots bumps the pool version,
  invalidating cached decisions, and the service's next answer reflects
  the new feasibility columns while the score table survives untouched;
* a **batch** through ``answer_many``, bit-identical to the same queries
  as sequential singles;
* the same queries over the **JSON-lines TCP transport** that
  ``repro-serve serve`` exposes.

Run with::

    python examples/serve_queries.py

The same queries are available from the command line::

    repro-serve query k80 --duration 6 --utc-hour 9
    repro-serve serve --port 7077     # then speak JSON lines to it
"""

from __future__ import annotations

import asyncio

from repro.modeling.placement import PlacementQuery
from repro.scenarios.pool import TransientPool
from repro.serve import PlacementService
from repro.serve.transport import request, serve_address, start_server
from repro.simulation.engine import Simulator


def show(decision, note: str) -> None:
    best = decision.best
    print(f"  {note} (pool v{decision.pool_version}):")
    for option in decision.options[:3]:
        marker = "->" if option is best else "  "
        print(f"   {marker} {option.region_name:>14} "
              f"@{option.launch_hour_local:02d}h local  "
              f"p(revoke)={option.revocation_probability:.3f}  "
              f"score={option.score:.3f}  "
              f"{'feasible' if option.feasible else 'INFEASIBLE'}")


async def main() -> None:
    pool = TransientPool(Simulator(), {("k80", "us-west1"): 3,
                                       ("k80", "europe-west1"): 2,
                                       ("v100", "us-central1"): 2})
    service = PlacementService(pool=pool, seed=0)
    built = service.warm()
    print(f"score table warmed: {built} (gpu, region, hour) options\n")

    query = PlacementQuery(gpu_name="k80", duration_hours=6.0,
                           hour_of_day_utc=9.0)
    print("live query: place one k80 worker for 6 h at 09:00 UTC")
    show(await service.answer(query), "fresh answer")
    await service.answer(query)
    print(f"  asked again: {service.cache_hits} cache hit, "
          f"pool version unchanged\n")

    print("churn: take both europe-west1 slots, revoke one us-west1 slot")
    pool.acquire("k80", "europe-west1")
    pool.acquire("k80", "europe-west1")
    pool.acquire("k80", "us-west1")
    pool.revoke("k80", "us-west1")
    show(await service.answer(query), "after churn")
    print(f"  decision cache invalidated {service.cache_invalidations}x; "
          f"score table still has {service.stats()['score_options_built']} "
          f"options (churn never touches it)\n")

    batch = [PlacementQuery(gpu_name="k80", duration_hours=float(hours),
                            hour_of_day_utc=9.0)
             for hours in (1, 6, 12, 23)]
    decisions = await service.answer_many(batch)
    singles = [await service.answer(item) for item in batch]
    assert decisions == singles  # the answer_many contract
    print("batch of 4 horizons == the same queries sequentially; "
          "p(revoke) grows with the horizon:")
    for item, decision in zip(batch, decisions):
        print(f"  {item.duration_hours:>4.0f} h -> "
              f"{decision.best.region_name} "
              f"p={decision.best.revocation_probability:.3f}")

    print("\nthe same query over the JSON-lines TCP transport:")
    server = await start_server(service)
    host, port = serve_address(server)
    try:
        responses = await request(host, port, [
            {"op": "answer", "query": query.to_params()},
            {"op": "stats"},
        ])
    finally:
        server.close()
        await server.wait_closed()
    wire = responses[0]["result"]
    print(f"  {host}:{port} answered: best="
          f"{wire['options'][0]['region_name']} "
          f"(pool v{wire['pool_version']})")
    stats = responses[1]["result"]
    print(f"  stats: {stats['queries_answered']} queries, "
          f"{stats['cache_hits']} cache hits, "
          f"{stats['cache_invalidations']} invalidations")


if __name__ == "__main__":
    asyncio.run(main())
