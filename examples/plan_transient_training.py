"""Plan a transient training run: predict time, revocations, and cost.

This example reproduces the paper's end-to-end use case (Section VI-A):

1. run the offline measurement campaigns (training speed, checkpoint time,
   revocations) on the simulated substrate,
2. fit the regression models of Tables II and IV,
3. compose them with the empirical revocation CDFs into the Eq. (4)/(5)
   training-time estimator, and
4. compare candidate cluster configurations — GPU type, worker count, and
   region — by predicted completion time and monetary cost.

Run with::

    python examples/plan_transient_training.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cloud.revocation import RevocationModel
from repro.measurement.checkpoint_campaign import run_checkpoint_campaign
from repro.measurement.revocation_campaign import run_revocation_campaign
from repro.measurement.speed_campaign import run_speed_campaign
from repro.modeling.checkpoint_predictor import TABLE4_MODEL_SPECS, CheckpointTimePredictor
from repro.modeling.cost import ClusterCostModel
from repro.modeling.speed_predictor import (
    ClusterSpeedPredictor,
    StepTimeModelSpec,
    StepTimePredictor,
)
from repro.modeling.training_time import TrainingTimeEstimator
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob
from repro.workloads.catalog import default_catalog


def build_estimator(seed: int = 0) -> tuple:
    """Run the offline campaigns and fit the full prediction stack."""
    print("Running offline measurement campaigns (speed, checkpoint, revocation)...")
    speed = run_speed_campaign(gpu_names=("k80", "p100"), steps=1500, seed=seed)
    checkpoints = run_checkpoint_campaign(seed=seed, with_sequential_check=False)
    revocations = run_revocation_campaign(seed=seed)

    per_gpu = {
        gpu: StepTimePredictor(StepTimeModelSpec(f"SVR RBF, {gpu}", "cm", "svr_rbf",
                                                 gpu)).fit(speed.measurements())
        for gpu in ("k80", "p100")
    }
    cluster_predictor = ClusterSpeedPredictor(per_gpu_predictors=per_gpu)
    checkpoint_predictor = CheckpointTimePredictor(TABLE4_MODEL_SPECS[-1]).fit(
        checkpoints.measurements())
    revocation_estimator = revocations.to_estimator(fallback_model=RevocationModel())
    estimator = TrainingTimeEstimator(cluster_predictor, checkpoint_predictor,
                                      revocation_estimator)
    return estimator, revocation_estimator


def main() -> None:
    catalog = default_catalog()
    profile = catalog.profile("resnet_32")
    # The paper's running example: 64K steps with a 4K-step checkpoint interval.
    job = TrainingJob(profile=profile, total_steps=64_000,
                      checkpoint_interval_steps=4000)
    estimator, revocation_estimator = build_estimator()
    cost_model = ClusterCostModel()

    candidates = {
        "2 x K80, us-west1": ClusterSpec.from_counts(k80=2, region_name="us-west1"),
        "2 x K80, europe-west1": ClusterSpec.from_counts(k80=2,
                                                         region_name="europe-west1"),
        "4 x K80, us-west1": ClusterSpec.from_counts(k80=4, region_name="us-west1"),
        "2 x P100, us-east1": ClusterSpec.from_counts(p100=2, region_name="us-east1"),
        "4 x P100, us-east1": ClusterSpec.from_counts(p100=4, region_name="us-east1"),
    }

    rows = []
    for label, cluster in candidates.items():
        prediction = estimator.predict(job, cluster)
        estimate = cost_model.estimate(cluster, prediction)
        rows.append([
            label,
            f"{prediction.cluster_speed:.1f}",
            f"{prediction.total_hours:.1f}",
            f"{prediction.expected_revocations:.2f}",
            f"{estimate.transient_cost_usd:.2f}",
            f"{estimate.on_demand_cost_usd:.2f}",
            f"{estimate.savings_fraction * 100:.0f}%",
        ])
    print()
    print(format_table(
        ["cluster", "speed (steps/s)", "time (h)", "E[revocations]",
         "transient cost ($)", "on-demand cost ($)", "savings"],
        rows, title=f"Planning {job.total_steps} steps of {profile.name}"))

    # Region advice straight from the empirical CDFs (Section V-C).
    region, probability = revocation_estimator.safest_region("k80", duration_hours=12.0)
    print(f"\nSafest region for a 12-hour K80 run: {region} "
          f"(revocation probability {probability * 100:.0f}%)")


if __name__ == "__main__":
    main()
