"""Detect and mitigate a parameter-server bottleneck (Section VI-B).

An eight-P100 ResNet-32 cluster is far beyond what a single parameter
server can absorb.  CM-DARE predicts the cluster speed as the sum of the
per-worker predictions, compares it against the measured speed from the
performance tracker, flags the bottleneck once the gap exceeds 6.7% after a
30-second warm-up, and (when mitigation is enabled) adds a second parameter
server at the cost of a ~10 s session restart.

Run with::

    python examples/bottleneck_detection.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cmdare.controller import ControllerConfig
from repro.cmdare.experiment import run_training_experiment
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.workloads.catalog import default_catalog


def run(cluster: ClusterSpec, mitigate: bool, steps: int = 8000):
    """Run one configuration and return (result, first bottleneck report)."""
    profile = default_catalog().profile("resnet_32")
    config = ControllerConfig(auto_mitigate_bottleneck=mitigate,
                              poll_interval_seconds=10.0)
    result = run_training_experiment(cluster, measurement_job(profile, steps=steps),
                                     seed=7, controller_config=config)
    flagged = next((r for r in result.controller.bottleneck_reports
                    if r.bottleneck_detected), None)
    return result, flagged


def main() -> None:
    cluster = ClusterSpec.from_counts(p100=8, region_name="us-east1")

    plain, flagged = run(cluster, mitigate=False)
    mitigated, _ = run(cluster, mitigate=True)

    print("CM-DARE bottleneck report for the un-mitigated run:")
    if flagged is not None:
        print(f"  predicted speed : {flagged.predicted_speed:.1f} steps/s")
        print(f"  measured speed  : {flagged.measured_speed:.1f} steps/s")
        print(f"  deviation       : {flagged.deviation * 100:.1f}% "
              f"(threshold 6.7% after a 30 s warm-up)")
        print(f"  suggestion      : {flagged.suggestion}")
    else:
        print("  no bottleneck detected (unexpected for this configuration)")

    improvement = mitigated.cluster_speed / plain.cluster_speed - 1.0
    print()
    print(format_table(
        ["configuration", "parameter servers", "cluster speed (steps/s)",
         "duration (min)"],
        [
            ["1 PS (no mitigation)", plain.session.ps_group.count,
             f"{plain.cluster_speed:.1f}", f"{plain.duration_seconds / 60:.1f}"],
            ["auto-mitigated", mitigated.session.ps_group.count,
             f"{mitigated.cluster_speed:.1f}", f"{mitigated.duration_seconds / 60:.1f}"],
        ],
        title="Eight P100 workers training ResNet-32"))
    print(f"\nAdding the second parameter server improved training speed by "
          f"{improvement * 100:.0f}% (the paper reports up to 70.6%).")
    print("Controller action log (mitigated run):")
    for action in mitigated.controller.actions:
        print(f"  t={action.time:7.1f}s [{action.kind}] {action.detail}")


if __name__ == "__main__":
    main()
