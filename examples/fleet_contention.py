"""Fleet contention, end to end.

Simulates two fleets that differ only in pool slack: a revocation storm
with enough headroom to absorb every revocation, and a capacity crunch
whose pool exactly covers the initial fleet — so every replacement request
after a revocation is denied and jobs limp on degraded.  Both fan out
through the sweep engine (serial == parallel bit-for-bit, cached in
``.fleet-cache/``), then print the fleet-level tables and the local-hour
revocation histogram (the Fig. 9 clustering, now at pool level).

Run with::

    python examples/fleet_contention.py

The same scenarios are available from the command line::

    python -m repro.scenarios run capacity_crunch --workers 2 --cache-dir .fleet-cache
"""

from __future__ import annotations

from repro.scenarios import (
    fleet_hour_histogram,
    fleet_summary_table,
    get_scenario,
    run_scenario,
)

CACHE_DIR = ".fleet-cache"


def main() -> None:
    for name in ("revocation_storm", "capacity_crunch"):
        scenario = get_scenario(name)
        print(f"=== {scenario.name}: {scenario.description}")
        print(f"    {scenario.describe()}")
        result = run_scenario(scenario, replicates=2, seed=0, workers=2,
                              cache_dir=CACHE_DIR)
        print(result.summary())
        print(fleet_summary_table(result))
        payloads = result.payloads()
        denied = sum(p["replacements_denied"] for p in payloads)
        admitted = sum(p["replacements_admitted"] for p in payloads)
        print(f"    replacements admitted={admitted} denied={denied}\n")

    # Where did the revocations land, in local wall-clock hours?  The
    # fleets launch at 9:30 AM europe-west1 time, inside the K80 peak.
    histogram = fleet_hour_histogram([
        payload
        for name in ("revocation_storm", "capacity_crunch")
        for payload in run_scenario(get_scenario(name), replicates=2, seed=0,
                                    workers=2, cache_dir=CACHE_DIR).payloads()])
    print("revocations per local hour (both fleets):")
    for hour, count in enumerate(histogram):
        if count:
            print(f"  {hour:02d}:00  {'#' * count} ({count})")


if __name__ == "__main__":
    main()
