"""Fleet contention, end to end.

Simulates four fleets across the contention regimes: a revocation storm
with enough headroom to absorb every revocation, a capacity crunch whose
pool exactly covers the initial fleet — so every replacement request after
a revocation is denied and jobs limp on degraded — the same storm with a
*warm pool* (reclaimed capacity returns as still-running servers that
queued replacements re-acquire through the Fig. 10 warm path), and the
crunch with a spare stable region plus *adaptive placement* (the
pool-aware launch advisor spreads the fleet and redirects denied
replacements).  All fan out through the sweep engine (serial == parallel
bit-for-bit, cached in ``.fleet-cache/``), then print the fleet-level
tables, a pool-size x queue-policy cost/makespan frontier, and the
local-hour revocation histogram (the Fig. 9 clustering, now at pool
level).

Run with::

    python examples/fleet_contention.py

The same scenarios are available from the command line::

    python -m repro.scenarios run capacity_crunch --workers 2 --cache-dir .fleet-cache
    python -m repro.scenarios run revocation_storm --warm-seconds 3600
    python -m repro.scenarios run capacity_crunch --placement adaptive
"""

from __future__ import annotations

from repro.scenarios import (
    fleet_frontier_table,
    fleet_hour_histogram,
    fleet_summary_table,
    get_scenario,
    run_scenario,
)

CACHE_DIR = ".fleet-cache"


def main() -> None:
    for name in ("revocation_storm", "capacity_crunch"):
        scenario = get_scenario(name)
        print(f"=== {scenario.name}: {scenario.description}")
        print(f"    {scenario.describe()}")
        result = run_scenario(scenario, replicates=2, seed=0, workers=2,
                              cache_dir=CACHE_DIR)
        print(result.summary())
        print(fleet_summary_table(result))
        payloads = result.payloads()
        denied = sum(p["replacements_denied"] for p in payloads)
        admitted = sum(p["replacements_admitted"] for p in payloads)
        print(f"    replacements admitted={admitted} denied={denied}\n")

    # The warm-reuse variant of the storm: how many of the absorbed
    # replacements dodged the ~75 s cold boot by re-acquiring a warm server?
    scenario = get_scenario("warm_reuse")
    print(f"=== {scenario.name}: {scenario.description}")
    result = run_scenario(scenario, replicates=2, seed=0, workers=2,
                          cache_dir=CACHE_DIR)
    print(fleet_summary_table(result))
    for payload in result.payloads():
        print(f"    warm replacements: {payload['replacements_warm']} "
              f"({payload['warm_reuse_rate']:.0%} of grants)")
    print()

    # The adaptive-placement variant of the crunch: the advisor spreads
    # the fleet toward the spare stable region and redirects replacements
    # a static fleet would have had denied.
    scenario = get_scenario("adaptive_placement")
    print(f"=== {scenario.name}: {scenario.description}")
    result = run_scenario(scenario, replicates=2, seed=0, workers=2,
                          cache_dir=CACHE_DIR)
    print(fleet_summary_table(result))
    for payload in result.payloads():
        print(f"    denial rate: {payload['replacement_denial_rate']:.2f} "
              f"(redirected {payload['placements_redirected']}); compare "
              f"the static crunch above")
    print()

    # Beyond replicates: a pool-size x queue-policy frontier over the
    # crunch, rendered as the cost/makespan frontier table ('*' = Pareto).
    result = run_scenario(get_scenario("capacity_crunch"), replicates=2,
                          seed=0, workers=2, cache_dir=CACHE_DIR,
                          pool_sizes=(1.0, 1.5), queue_policies=("deny", "queue"))
    print(fleet_frontier_table(result))
    print()

    # Where did the revocations land, in local wall-clock hours?  The
    # fleets launch at 9:30 AM europe-west1 time, inside the K80 peak.
    histogram = fleet_hour_histogram([
        payload
        for name in ("revocation_storm", "capacity_crunch")
        for payload in run_scenario(get_scenario(name), replicates=2, seed=0,
                                    workers=2, cache_dir=CACHE_DIR).payloads()])
    print("revocations per local hour (both fleets):")
    for hour, count in enumerate(histogram):
        if count:
            print(f"  {hour:02d}:00  {'#' * count} ({count})")


if __name__ == "__main__":
    main()
