"""A model × GPU measurement sweep, end to end.

Builds the Table I speed grid as a declarative :class:`repro.sweeps.SweepSpec`,
runs it in parallel on a process pool with per-cell result caching, shows
that the parallel run reproduces the serial run bit-for-bit, and renders
the aggregated result through :mod:`repro.analysis`.

Run with::

    python examples/sweep_campaign.py

Re-running is nearly instant: every cell is served from the JSON cache in
``.sweep-cache/``.  The same sweep is also available from the command
line::

    python -m repro.sweeps run speed --workers 4 --cache-dir .sweep-cache
"""

from __future__ import annotations

import time

from repro.measurement.speed_campaign import build_speed_spec, speed_cell
from repro.sweeps import SweepRunner
from repro.workloads.catalog import NAMED_MODELS, default_catalog

CACHE_DIR = ".sweep-cache"


def main() -> None:
    # 1. Declare the grid: four named models x three GPU types, 2000
    #    measurement steps per cell.  Cells expand row-major with stable
    #    indices, so results are ordered the same on every run.
    spec = build_speed_spec(model_names=NAMED_MODELS,
                            gpu_names=("k80", "p100", "v100"), steps=2000)
    print(f"{spec!r}\n")
    catalog = default_catalog()

    # 2. Run it serially, then on four worker processes.  Each cell's
    #    random streams are derived from (seed, sweep name, parameters)
    #    alone, so the two runs produce identical payloads.
    started = time.perf_counter()
    serial = SweepRunner(workers=1, seed=1).run(spec, speed_cell, context=catalog)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = SweepRunner(workers=4, cache_dir=CACHE_DIR, seed=1).run(
        spec, speed_cell, context=catalog)
    parallel_seconds = time.perf_counter() - started

    assert serial.payloads() == parallel.payloads(), "parallel must equal serial"
    print(f"serial:   {serial_seconds:.2f}s")
    print(f"parallel: {parallel_seconds:.2f}s ({parallel.summary()})")

    # 3. A warm re-run serves every cell from the cache.
    warm = SweepRunner(workers=4, cache_dir=CACHE_DIR, seed=1).run(
        spec, speed_cell, context=catalog)
    assert warm.cache_hits == len(spec)
    assert warm.payloads() == serial.payloads()
    print(f"warm:     {warm.summary()}\n")

    # 4. Aggregate: the sweep result feeds repro.analysis tables directly.
    print(parallel.to_table(["speed_mean", "speed_std", "step_time"],
                            title="Table I reproduction: cluster speed (steps/s)"))


if __name__ == "__main__":
    main()
