"""Quickstart: profile a model, train it on a simulated cloud cluster, and
look at what CM-DARE measured.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cmdare.experiment import run_training_experiment
from repro.modeling.cost import ClusterCostModel
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob
from repro.workloads.catalog import default_catalog


def main() -> None:
    # 1. Pick a model from the twenty-model catalog and look at its profile
    #    (the reproduction's substitute for the TensorFlow profiler).
    catalog = default_catalog()
    profile = catalog.profile("resnet_32")
    print(profile_table(profile))

    # 2. Describe the training cluster and workload the way a practitioner
    #    would in a CM-DARE training script: two transient K80 workers plus
    #    one on-demand parameter server, 8000 steps, checkpoint every 2000.
    cluster = ClusterSpec.from_counts(k80=2, region_name="us-east1")
    job = TrainingJob(profile=profile, total_steps=8000,
                      checkpoint_interval_steps=2000)

    # 3. Run the experiment on the simulated substrate.  The controller
    #    monitors training and would replace revoked workers automatically.
    result = run_training_experiment(cluster, job, seed=0, with_provider=True)

    trace = result.trace
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["cluster", cluster.describe()],
            ["cluster training speed (steps/s)", f"{trace.cluster_speed():.2f}"],
            ["simulated duration (minutes)", f"{trace.duration / 60:.1f}"],
            ["checkpoints taken", len(trace.checkpoint_records)],
            ["time spent checkpointing (s)", f"{trace.total_checkpoint_time():.1f}"],
            ["revocations observed", trace.num_revocations],
            ["replacement workers added", trace.num_replacements],
            ["cloud cost (USD)", f"{result.total_cost_usd:.2f}"],
        ],
        title="Training run summary"))

    # 4. What would the same run cost on on-demand servers?
    cost_model = ClusterCostModel()
    hours = trace.duration / 3600.0
    on_demand = cost_model.hourly_rate(cluster, transient_workers=False) * hours
    print(f"\nOn-demand cost for the same duration: ${on_demand:.2f} "
          f"(transient run cost ${result.total_cost_usd:.2f})")


def profile_table(profile) -> str:
    """Render a model profile as a small table."""
    return format_table(
        ["property", "value"],
        [
            ["model", profile.name],
            ["family", profile.family],
            ["complexity (GFLOPs/image)", f"{profile.gflops:.2f}"],
            ["parameters", f"{profile.params:,}"],
            ["trainable tensors", profile.num_tensors],
            ["checkpoint size (MB)", f"{profile.checkpoint.total_mb:.1f}"],
        ],
        title="Model profile")


if __name__ == "__main__":
    main()
