"""Heterogeneous-cluster speed prediction (Section VI-A).

The paper observes that (a) an individual worker's speed does not change
when workers of *other* GPU types join the cluster, so (b) the speed of a
heterogeneous cluster is approximately the sum of its workers' individual
speeds.  This example fits the per-GPU step-time models from a measurement
campaign, composes them into a heterogeneous-cluster prediction, and checks
it against a simulated run of the mixed (2, 1, 1) cluster.

Run with::

    python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cmdare.experiment import run_training_experiment
from repro.measurement.speed_campaign import run_speed_campaign
from repro.modeling.speed_predictor import (
    ClusterSpeedPredictor,
    StepTimeModelSpec,
    StepTimePredictor,
)
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import measurement_job
from repro.workloads.catalog import default_catalog


def main() -> None:
    catalog = default_catalog()
    profile = catalog.profile("resnet_32")

    print("Fitting per-GPU step-time models from a measurement campaign...")
    campaign = run_speed_campaign(gpu_names=("k80", "p100", "v100"), steps=1500, seed=5)
    per_gpu = {
        gpu: StepTimePredictor(StepTimeModelSpec(f"Univariate, {gpu}", "cm", "linear",
                                                 gpu)).fit(campaign.measurements())
        for gpu in ("k80", "p100", "v100")
    }
    predictor = ClusterSpeedPredictor(per_gpu_predictors=per_gpu)

    gpu_names = ["k80", "k80", "p100", "v100"]
    worker_speeds = predictor.predict_worker_speeds(profile.gflops, gpu_names)
    predicted = predictor.predict_cluster_speed(profile.gflops, gpu_names)

    print()
    print(format_table(
        ["worker", "GPU", "predicted speed (steps/s)"],
        [[f"worker-{i}", gpu, f"{speed:.2f}"]
         for i, (gpu, speed) in enumerate(zip(gpu_names, worker_speeds))],
        title="Per-worker predictions for ResNet-32"))
    print(f"\nPredicted heterogeneous cluster speed (sum of workers): "
          f"{predicted:.2f} steps/s")

    cluster = ClusterSpec(workers=tuple(WorkerSpec(gpu_name=gpu,
                                                   region_name="us-central1")
                                        for gpu in gpu_names),
                          ps_region_name="us-central1")
    result = run_training_experiment(cluster, measurement_job(profile, steps=4000),
                                     seed=6, with_controller=False)
    measured = result.cluster_speed
    error = abs(predicted - measured) / measured * 100

    print(f"Measured speed of the simulated (2, 1, 1) cluster: {measured:.2f} steps/s")
    print(f"Prediction error: {error:.1f}% "
          "(the paper reports 0.8% for its ResNet-32 example)")

    print("\nPer-worker measured step times (ms):")
    for worker_id in result.trace.worker_ids():
        mean, std = result.trace.worker_mean_step_time(worker_id)
        gpu = result.session.workers[worker_id].gpu_name
        print(f"  {worker_id} ({gpu}): {mean * 1000:.1f} +- {std * 1000:.1f}")


if __name__ == "__main__":
    main()
