"""Train through revocations on transient servers.

A four-worker K80 cluster trains ResNet-15 in europe-west1 — the region
with the *highest* K80 revocation rate in the study — on preemptible
servers.  The simulated cloud provider revokes workers according to the
calibrated lifetime model; CM-DARE's controller requests replacements
immediately (the paper shows immediate requests carry no startup penalty)
and the asynchronous parameter-server architecture keeps training running
throughout.

Run with::

    python examples/surviving_revocations.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cmdare.experiment import run_training_experiment
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob
from repro.workloads.catalog import default_catalog


def main() -> None:
    profile = default_catalog().profile("resnet_15")
    cluster = ClusterSpec.from_counts(k80=4, region_name="europe-west1")
    # Roughly ninety minutes of simulated training with 4K-step checkpoints.
    job = TrainingJob(profile=profile, total_steps=160_000,
                      checkpoint_interval_steps=4000)

    print(f"Training {profile.name} on {cluster.describe()} in europe-west1 "
          "(transient servers)...")
    result = run_training_experiment(cluster, job, seed=29, with_provider=True,
                                     steps_per_event=50)
    trace = result.trace

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["steps completed", trace.total_steps],
            ["simulated duration (hours)", f"{trace.duration / 3600:.2f}"],
            ["average cluster speed (steps/s)", f"{trace.cluster_speed():.1f}"],
            ["checkpoints written", len(trace.checkpoint_records)],
            ["revocations", trace.num_revocations],
            ["replacements added", trace.num_replacements],
            ["chief revocations", sum(1 for r in trace.revocation_records if r.was_chief)],
            ["cloud cost (USD)", f"{result.total_cost_usd:.2f}"],
        ],
        title="Transient training summary"))

    if trace.revocation_records:
        print("\nRevocation / replacement timeline:")
        events = sorted(
            [(r.time, f"revocation of {r.worker_id}"
              + (" (chief; checkpointing handed off)" if r.was_chief else ""))
             for r in trace.revocation_records]
            + [(r.time, f"replacement {r.worker_id} requested "
                f"(cold start, {r.overhead_seconds:.0f}s overhead)")
               for r in trace.replacement_records])
        for time, description in events:
            print(f"  t={time / 60:6.1f} min  {description}")
    else:
        print("\nNo revocations occurred in this run — try another seed.")

    print("\nController log:")
    for action in result.controller.actions:
        print(f"  t={action.time / 60:6.1f} min [{action.kind}] {action.detail}")


if __name__ == "__main__":
    main()
