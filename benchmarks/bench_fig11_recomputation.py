"""Fig. 11: TensorFlow-specific recomputation overhead.

Regenerates the recomputation-overhead curve: a two-K80 ResNet-15 cluster
with a 4K-step checkpoint interval loses its chief 1K steps after a
checkpoint; the replacement either reuses the chief's IP (unmodified
TensorFlow: recompute from the checkpoint) or gets a fresh one (CM-DARE's
transient-TensorFlow).  The overhead grows with the replacement timing and
is bounded by the checkpoint interval under CM-DARE.
"""

from __future__ import annotations

from repro.analysis.figures import ascii_plot
from repro.analysis.tables import format_table
from repro.measurement.replacement_campaign import run_recomputation_campaign


def test_fig11_recomputation_overhead(benchmark, catalog, sweep_workers,
                                      sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: run_recomputation_campaign(
            replacement_steps=(1500, 2000, 2500, 3000, 3500), seed=19, catalog=catalog,
            workers=sweep_workers, cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    rows = [[point.replacement_step, point.legacy_seconds, point.transient_tf_seconds,
             point.overhead_seconds] for point in result.points]
    print()
    print(format_table(["steps since last checkpoint", "legacy (s)",
                        "transient-TF (s)", "overhead (s)"], rows,
                       title="Fig. 11 reproduction: recomputation overhead",
                       float_format="{:.1f}"))
    print(ascii_plot(result.overhead_series()))

    overheads = [point.overhead_seconds for point in result.points]
    # Overhead grows with the number of discarded steps.
    assert overheads == sorted(overheads)
    # The legacy behaviour always loses time relative to CM-DARE.
    assert all(point.legacy_seconds > point.transient_tf_seconds
               for point in result.points)
    # The overhead magnitude sits in the same range the paper reports (the
    # paper's worst case with a 4K-step interval is ~224 s; our two-K80
    # cluster recomputes at ~19 steps/s so ~3.5K discarded steps cost ~200 s).
    assert 40.0 < overheads[0] < 150.0
    assert 120.0 < result.max_overhead() < 350.0
