"""Ablation: transient-aware chief recovery vs. the legacy IP-reuse path.

CM-DARE's transient-TensorFlow hands checkpoint responsibility to a
surviving worker when the chief is revoked; unmodified TensorFlow (with the
replacement reusing the chief's IP) recomputes from the last checkpoint.
This ablation revokes the chief mid-interval in both modes and measures the
end-to-end completion time, quantifying the benefit of the paper's
framework modification beyond the isolated Fig. 11 measurement.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.faults import FaultInjector
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession


def run_scenario(catalog, reuse_chief_ip: bool, seed: int = 30) -> float:
    """Train 8K steps, revoke the chief at 5K, replace at 6K; return duration."""
    profile = catalog.profile("resnet_15")
    streams = RandomStreams(seed=seed)
    session = TrainingSession(
        Simulator(), ClusterSpec.from_counts(k80=2),
        TrainingJob(profile=profile, total_steps=8000, checkpoint_interval_steps=4000),
        streams=streams)
    injector = FaultInjector(session, poll_interval_seconds=1.0)
    injector.revoke_at_step("worker-0", 5000)
    injector.replace_at_step(WorkerSpec(gpu_name="k80"), 6000, overhead_seconds=15.0,
                             reuse_chief_ip=reuse_chief_ip, cold_start=False)
    trace = session.run_to_completion()
    assert trace.end_time is not None
    return trace.end_time - trace.start_time


def test_ablation_recovery_policy(benchmark, catalog):
    transient_aware = benchmark.pedantic(lambda: run_scenario(catalog, False),
                                         rounds=1, iterations=1)
    legacy = run_scenario(catalog, True)
    overhead = legacy - transient_aware

    print()
    print(format_table(
        ["recovery policy", "completion time (s)"],
        [["transient-aware handoff (CM-DARE)", f"{transient_aware:.1f}"],
         ["legacy chief-IP reuse", f"{legacy:.1f}"],
         ["recomputation overhead", f"{overhead:.1f}"]],
        title="Ablation: chief-revocation recovery policy (ResNet-15, 2 x K80)"))

    # The legacy path discards ~2K steps of progress: at ~19 steps/s that is
    # on the order of 100+ seconds, plus the session restart.
    assert overhead > 60.0
    # And it is bounded by the work since the last checkpoint: well under the
    # cost of recomputing the full 4K-step interval twice.
    assert overhead < 2 * 4000 / 15.0
    # CM-DARE's policy never loses progress, so its completion time is within
    # a few percent of an undisturbed run plus the replacement gap.
    assert transient_aware < legacy
