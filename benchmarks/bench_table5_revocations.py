"""Table V: transient GPU server revocations by region.

Regenerates the per-(region, GPU) revocation counts from the twelve-day
campaign and checks the paper's qualitative findings: revocation rates vary
by region and GPU, more expensive GPUs are revoked more often, and the
workload (idle vs stressed) does not matter.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cloud.revocation import REVOCATION_CALIBRATION


def test_table5_revocations(benchmark, revocation_campaign):
    table = benchmark.pedantic(revocation_campaign.revocation_table,
                               rounds=1, iterations=1)

    regions = ["us-east1", "us-central1", "us-west1", "europe-west1", "europe-west4",
               "asia-east1"]
    rows = []
    for region in regions:
        row = [region]
        for gpu in ("k80", "p100", "v100"):
            if (gpu, region) in table:
                launched, revoked, fraction = table[(gpu, region)]
                row.append(f"{launched} ({fraction * 100:.1f}%)")
            else:
                row.append("N/A")
        rows.append(row)
    totals = revocation_campaign.totals_by_gpu()
    rows.append(["total"] + [f"{totals[gpu][0]} ({totals[gpu][2] * 100:.1f}%)"
                             for gpu in ("k80", "p100", "v100")])
    print()
    print(format_table(["Regions", "K80", "P100", "V100"], rows,
                       title="Table V reproduction: launched servers (revoked %)"))

    # Launch counts match the paper exactly.
    assert totals["k80"][0] == 156
    assert totals["p100"][0] == 120
    assert totals["v100"][0] == 120
    # Aggregate revocation rates stay close to the paper's totals
    # (46.15% / 54.17% / 57.5%).
    assert abs(totals["k80"][2] - 0.4615) < 0.12
    assert abs(totals["p100"][2] - 0.5417) < 0.12
    assert abs(totals["v100"][2] - 0.575) < 0.12
    # More expensive GPUs are revoked more often than K80s overall.
    assert totals["v100"][2] > totals["k80"][2]
    # us-west1 is the gentlest region for K80 but harsh for V100.
    assert table[("k80", "us-west1")][2] < table[("k80", "europe-west1")][2]
    assert table[("v100", "us-west1")][2] > 0.5
    # Idle vs stressed servers are revoked at similar rates.
    split = revocation_campaign.workload_split()
    print(f"idle: {split['idle'][2] * 100:.1f}% revoked, "
          f"stressed: {split['stressed'][2] * 100:.1f}% revoked")
    assert abs(split["idle"][2] - split["stressed"][2]) < 0.12
    assert set(table) == set(REVOCATION_CALIBRATION)
