"""Shared harness helpers for the ``*_baseline.py`` benchmark scripts.

Every baseline script carries the same scaffolding around its actual
measurements: the ``--quick`` / ``--check [BASELINE]`` / ``--json-out``
argument trio the CI smoke jobs drive, a host-environment block recorded
next to the numbers, trailing-newline JSON writes, and a regression gate
that compares a measured speedup *ratio* (host-independent) against the
committed baseline instead of absolute throughput (host-specific).  This
module is that scaffolding, factored out once; the scripts keep only the
measurements themselves.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Optional, Sequence, Tuple


def environment_block(include_numpy: bool = True) -> dict:
    """The host/environment snapshot recorded in every committed baseline."""
    block = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if include_numpy:
        import numpy as np
        block["numpy"] = np.__version__
    block["cpu_count"] = os.cpu_count()
    block["usable_cpus"] = (len(os.sched_getaffinity(0))
                            if hasattr(os, "sched_getaffinity")
                            else os.cpu_count())
    return block


def write_json(path: str, document: dict, announce: bool = True) -> None:
    """Write ``document`` as indented JSON with a trailing newline."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    if announce:
        print(f"wrote {path}")


def make_parser(doc: str, *, output: str,
                check_help: str) -> argparse.ArgumentParser:
    """The baseline-script argument parser: ``--quick/--check/--json-out``.

    ``--check`` takes an optional baseline path and defaults to the
    script's committed ``output`` when given bare — exactly how the CI
    smoke jobs invoke it (``--quick --check``).
    """
    parser = argparse.ArgumentParser(description=doc.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="measure only the quick configuration; do not "
                             f"rewrite {os.path.basename(output)}")
    parser.add_argument("--check", nargs="?", const=output, default=None,
                        metavar="BASELINE", help=check_help)
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="write the measured numbers to PATH (CI uploads "
                             "them as a workflow artifact)")
    return parser


def _dig(document: dict, path: Sequence[str]):
    for key in path:
        document = document[key]
    return document


def ratio_gate(baseline_path: str, measured: dict, *,
               ratio_path: Sequence[str], label: str, tolerance: float,
               informative_path: Optional[Sequence[str]] = None,
               informative_label: str = "", precision: int = 2) -> int:
    """Gate a measured speedup ratio against the committed baseline.

    Ratios (fast-vs-slow paths measured on one host in one process) are
    comparable across machines; the committed absolute numbers are host
    specific and only printed as an informative aside.  Returns a process
    exit code: 0 within ``tolerance`` of the committed ratio, 1 on a
    regression or a missing baseline.
    """
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
    except FileNotFoundError:
        print(f"no committed baseline at {baseline_path}; nothing to check")
        return 1
    reference = _dig(committed["quick"], ratio_path)
    current = _dig(measured, ratio_path)
    floor = reference * (1.0 - tolerance)
    verdict = "OK" if current >= floor else "REGRESSION"
    print(f"{label}: measured {current:.{precision}f}x vs "
          f"committed {reference:.{precision}f}x "
          f"(floor {floor:.{precision}f}x) -> {verdict}")
    if informative_path is not None:
        print(f"(informative absolute {informative_label}: measured "
              f"{_dig(measured, informative_path):,.0f}, committed "
              f"{_dig(committed['quick'], informative_path):,.0f})")
    return 0 if current >= floor else 1
