"""Fig. 3: step time vs. normalized computation and model complexity.

Regenerates the twenty-model scatter for K80 and P100 workers and checks
the strong positive correlation the paper observes, plus the separation of
the per-GPU trend lines when plotting against raw model complexity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import FigureSeries
from repro.modeling.preprocessing import MinMaxScaler


def test_fig3_step_time_correlation(benchmark, full_speed_campaign):
    cells = benchmark.pedantic(lambda: list(full_speed_campaign.cells),
                               rounds=1, iterations=1)

    figure_a = FigureSeries(title="Fig. 3(a): step time vs normalized computation",
                            x_label="normalized Cm/Cgpu", y_label="step time (s)")
    figure_b = FigureSeries(title="Fig. 3(b): step time vs normalized model GFLOPs",
                            x_label="normalized Cm", y_label="step time (s)")

    ratios = np.array([[cell.computation_ratio] for cell in cells])
    gflops = np.array([[cell.model_gflops] for cell in cells])
    norm_ratio = MinMaxScaler().fit_transform(ratios).ravel()
    norm_gflops = MinMaxScaler().fit_transform(gflops).ravel()

    for gpu in ("k80", "p100"):
        points_a, points_b = [], []
        for index, cell in enumerate(cells):
            if cell.gpu_name != gpu:
                continue
            points_a.append((norm_ratio[index], cell.step_time))
            points_b.append((norm_gflops[index], cell.step_time))
        figure_a.add_series(gpu, sorted(points_a))
        figure_b.add_series(gpu, sorted(points_b))
    print()
    print(figure_a.to_text())
    print(figure_b.to_text())

    # Strong positive correlation between step time and both features.
    for gpu in ("k80", "p100"):
        x = np.array([cell.computation_ratio for cell in cells if cell.gpu_name == gpu])
        y = np.array([cell.step_time for cell in cells if cell.gpu_name == gpu])
        correlation = np.corrcoef(x, y)[0, 1]
        print(f"{gpu}: corr(step time, computation ratio) = {correlation:.3f}")
        assert correlation > 0.95
        assert len(x) == 20

    # Against raw model complexity the two GPUs separate: for the same Cm the
    # K80 step time is consistently larger.
    by_model = {}
    for cell in cells:
        by_model.setdefault(cell.model_name, {})[cell.gpu_name] = cell.step_time
    assert all(times["k80"] > times["p100"] for times in by_model.values())
