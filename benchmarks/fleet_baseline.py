"""Record the fleet execution-core baseline (``BENCH_fleet.json``).

Runs the *reference fleet* — the ``revocation_storm`` scenario scaled to
100 concurrent jobs (3 K80 workers each in europe-west1, launched into the
Fig. 9 late-morning revocation peak, pool of 4 slots per job, queued
replacements) — under both fleet schedulers:

* ``wakeset`` (default): the event-ownership scheduler — O(1) driver work
  per simulator event;
* ``roundrobin``: the original PR 3 fleet loop, kept behind
  ``REPRO_FLEET_SCHEDULER=roundrobin`` as the bit-identical-payload
  reference, including the old per-offer cost model (one heap peek plus an
  O(workers) id-set probe per job per event, no disturbance-horizon
  cache).

It verifies the payload contracts — bit-identical fleet payloads across
scheduler choice, simulation core path (``REPRO_CORE_FASTFORWARD``), sweep
worker count, and trace level — and records fleet events/sec, wall-clock,
and peak traced memory for the ``trace_level`` full/summary modes.

Run with::

    python benchmarks/fleet_baseline.py            # full baseline, writes JSON
    python benchmarks/fleet_baseline.py --quick    # quick config only, no write
    python benchmarks/fleet_baseline.py --quick --check
        # measure the quick config and fail (exit 1) if the wakeset-vs-
        # roundrobin events/sec ratio regressed more than 30% against the
        # committed BENCH_fleet.json
    python benchmarks/fleet_baseline.py --quick --json-out out.json
        # also dump the measured numbers (CI uploads these as artifacts)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc

import numpy as np

from repro.scenarios.fleet import FleetRun, run_scenario
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.rng import RandomStreams

#: The reference fleet: revocation_storm scaled to 100 jobs.  Job shape,
#: region, epoch hour, queueing, and pool-per-job ratio all match the
#: named scenario; only the job count is scaled (the named scenario runs
#: 3 jobs on a 12-slot pool, i.e. 4 slots per job).
REFERENCE = {"jobs": 100, "total_steps": 60_000, "workers_per_job": 3,
             "pool_slots_per_job": 4, "seed": 0}

#: Quick variant used by the CI smoke gate.
QUICK_STEPS = 2_000

#: Allowed fractional events/sec-ratio regression before ``--check`` fails.
REGRESSION_TOLERANCE = 0.30

#: Timing repetitions (the best run is recorded, damping scheduler noise).
REPETITIONS = 2

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_fleet.json")


def scaled_storm(jobs: int, total_steps: int) -> ScenarioSpec:
    """``revocation_storm`` scaled to ``jobs`` concurrent jobs."""
    specs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=total_steps,
                workers=(("k80", "europe-west1"),) * REFERENCE["workers_per_job"],
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(jobs))
    return ScenarioSpec(
        name=f"revocation_storm_x{jobs}",
        description=f"revocation_storm scaled to {jobs} jobs",
        jobs=specs,
        pool_capacity={("k80", "europe-west1"):
                       REFERENCE["pool_slots_per_job"] * jobs},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5)


def _run_fleet(scenario: ScenarioSpec, scheduler: str,
               fast_forward=None, trace_level=None):
    run = FleetRun(scenario, RandomStreams(REFERENCE["seed"]),
                   scheduler=scheduler, fast_forward=fast_forward,
                   trace_level=trace_level or "full")
    started = time.perf_counter()
    payload = run.run()
    wall = time.perf_counter() - started
    return payload, wall, run.events_processed


def _measure_scheduler(scenario: ScenarioSpec, scheduler: str):
    best_wall, payload, events = float("inf"), None, 0
    for _ in range(REPETITIONS):
        payload, wall, events = _run_fleet(scenario, scheduler)
        best_wall = min(best_wall, wall)
    return {
        "wall_seconds": round(best_wall, 3),
        "events_processed": events,
        "events_per_sec": round(events / best_wall, 1),
    }, payload


def _peak_traced_mb(scenario: ScenarioSpec, trace_level: str):
    tracemalloc.start()
    payload, _, _ = _run_fleet(scenario, "wakeset", trace_level=trace_level)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return round(peak / (1024.0 * 1024.0), 3), payload


def _measure_pair(total_steps: int, identity_steps: int) -> dict:
    """Measure both schedulers and verify every payload contract."""
    scenario = scaled_storm(REFERENCE["jobs"], total_steps)
    wakeset, payload_wakeset = _measure_scheduler(scenario, "wakeset")
    roundrobin, payload_roundrobin = _measure_scheduler(scenario, "roundrobin")
    assert payload_wakeset == payload_roundrobin, \
        "wake-set payload diverged from the round-robin reference"

    # The expensive identity axes run on a smaller fleet: the chunked core
    # path simulates every step event-by-event.
    identity_scenario = scaled_storm(REFERENCE["jobs"], identity_steps)
    reference_payload, _, _ = _run_fleet(identity_scenario, "wakeset")
    chunked_payload, _, _ = _run_fleet(identity_scenario, "roundrobin",
                                       fast_forward=False)
    assert chunked_payload == reference_payload, \
        "chunked-core payload diverged from the fast-forward payload"
    serial = run_scenario(identity_scenario, replicates=2, seed=7, workers=1)
    parallel = run_scenario(identity_scenario, replicates=2, seed=7, workers=4)
    assert serial.payloads() == parallel.payloads(), \
        "parallel sweep payloads diverged from serial"

    full_mb, payload_full = _peak_traced_mb(identity_scenario, "full")
    summary_mb, payload_summary = _peak_traced_mb(identity_scenario, "summary")
    assert payload_summary == payload_full == reference_payload, \
        "summary-trace payload diverged from the full-trace payload"

    return {
        "total_steps_per_job": total_steps,
        "wakeset": wakeset,
        "roundrobin": roundrobin,
        "speedup_events_per_sec": round(
            wakeset["events_per_sec"] / roundrobin["events_per_sec"], 2),
        "bit_identical_payloads": {
            "scheduler": True, "core_path": True, "sweep_workers": True,
            "trace_level": True,
        },
        "peak_traced_mb": {
            "trace_level_full": full_mb,
            "trace_level_summary": summary_mb,
            "identity_fleet_steps_per_job": identity_steps,
        },
        "fleet": {
            "jobs": payload_wakeset["jobs_total"],
            "completed": payload_wakeset["jobs_completed"],
            "stalled": payload_wakeset["jobs_stalled"],
            "revocations": payload_wakeset["revocations"],
            "replacements_admitted": payload_wakeset["replacements_admitted"],
            "makespan_hours": round(
                payload_wakeset["makespan_seconds"] / 3600.0, 3),
        },
    }


def _check(baseline_path: str, measured: dict) -> int:
    """Gate on the wakeset-vs-roundrobin events/sec ratio.

    Both schedulers run the same fleet in the same process, so their ratio
    is comparable across machines; the committed absolute numbers are host
    specific and only informative.
    """
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
    except FileNotFoundError:
        print(f"no committed baseline at {baseline_path}; nothing to check")
        return 1
    reference = committed["quick"]["speedup_events_per_sec"]
    current = measured["speedup_events_per_sec"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    verdict = "OK" if current >= floor else "REGRESSION"
    print(f"wakeset speedup over roundrobin: measured {current:.2f}x vs "
          f"committed {reference:.2f}x (floor {floor:.2f}x) -> {verdict}")
    print(f"(informative absolute wakeset events/sec: measured "
          f"{measured['wakeset']['events_per_sec']:,.0f}, committed "
          f"{committed['quick']['wakeset']['events_per_sec']:,.0f})")
    return 0 if current >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="measure only the quick configuration; do not "
                             "rewrite BENCH_fleet.json")
    parser.add_argument("--check", nargs="?", const=OUTPUT, default=None,
                        metavar="BASELINE",
                        help="compare the quick wakeset-vs-roundrobin "
                             "events/sec ratio against a committed baseline "
                             "(default benchmarks/BENCH_fleet.json) and exit "
                             "non-zero on a >30%% regression")
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="write the measured numbers to PATH (CI uploads "
                             "them as a workflow artifact)")
    args = parser.parse_args(argv)

    quick = _measure_pair(QUICK_STEPS, identity_steps=QUICK_STEPS)
    print(json.dumps({"quick": quick}, indent=2))
    measured = {"quick": quick}
    status = 0
    if args.check is not None:
        status = _check(args.check, quick)
    elif not args.quick:
        full = _measure_pair(REFERENCE["total_steps"],
                             identity_steps=QUICK_STEPS)
        measured["full"] = full
        baseline = {
            "reference_fleet": REFERENCE,
            "full": full,
            "quick": quick,
            "environment": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
                "usable_cpus": len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            },
            "note": ("events_per_sec counts processed fleet events (chunk "
                     "completions + fired heap events) for one 100-job "
                     "revocation_storm fleet in one process.  Tracked "
                     "contracts: fleet payloads stay bit-identical across "
                     "scheduler choice, core path, sweep worker count, and "
                     "trace level, and the wake-set scheduler stays >= 5x "
                     "the round-robin reference's events/sec on the full "
                     "100-job reference fleet.  Regenerate with `python "
                     "benchmarks/fleet_baseline.py` on the same host class "
                     "when the fleet loop, session fast-forward, or "
                     "revocation sampler changes."),
        }
        with open(OUTPUT, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(json.dumps({"full": full}, indent=2))
        print(f"\nwrote {OUTPUT}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(measured, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    return status


if __name__ == "__main__":
    sys.exit(main())
