"""Record the fleet execution-core baseline (``BENCH_fleet.json``).

Runs the *reference fleet* — the ``revocation_storm`` scenario scaled to
100 concurrent jobs (3 K80 workers each in europe-west1, launched into the
Fig. 9 late-morning revocation peak, pool of 4 slots per job, queued
replacements) — under both fleet schedulers:

* ``wakeset`` (default): the event-ownership scheduler — O(1) driver work
  per simulator event;
* ``roundrobin``: the original PR 3 fleet loop, kept behind
  ``REPRO_FLEET_SCHEDULER=roundrobin`` as the bit-identical-payload
  reference, including the old per-offer cost model (one heap peek plus an
  O(workers) id-set probe per job per event, no disturbance-horizon
  cache).

It verifies the payload contracts — bit-identical fleet payloads across
scheduler choice, simulation core path (``REPRO_CORE_FASTFORWARD``), sweep
worker count, and trace level — and records fleet events/sec, wall-clock,
and peak traced memory for the ``trace_level`` full/summary modes.

Run with::

    python benchmarks/fleet_baseline.py            # full baseline, writes JSON
    python benchmarks/fleet_baseline.py --quick    # quick config only, no write
    python benchmarks/fleet_baseline.py --quick --check
        # measure the quick config and fail (exit 1) if the wakeset-vs-
        # roundrobin events/sec ratio regressed more than 30% against the
        # committed BENCH_fleet.json
    python benchmarks/fleet_baseline.py --quick --json-out out.json
        # also dump the measured numbers (CI uploads these as artifacts)
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc

from _common import environment_block, make_parser, ratio_gate, write_json
from repro.scenarios.fleet import FleetRun, run_scenario
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.rng import RandomStreams
from repro.telemetry.writer import TelemetryConfig, TelemetrySpool

#: The reference fleet: revocation_storm scaled to 100 jobs.  Job shape,
#: region, epoch hour, queueing, and pool-per-job ratio all match the
#: named scenario; only the job count is scaled (the named scenario runs
#: 3 jobs on a 12-slot pool, i.e. 4 slots per job).
REFERENCE = {"jobs": 100, "total_steps": 60_000, "workers_per_job": 3,
             "pool_slots_per_job": 4, "seed": 0}

#: Quick variant used by the CI smoke gate.
QUICK_STEPS = 2_000

#: Allowed fractional events/sec-ratio regression before ``--check`` fails.
REGRESSION_TOLERANCE = 0.30

#: Timing repetitions (the best run is recorded, damping scheduler noise).
REPETITIONS = 2

#: Telemetry-spool chunk size for the bounded-memory measurement.
TELEMETRY_CHUNK_ROWS = 256

#: Generous per-buffered-value byte cost for the telemetry memory bound:
#: the spool buffers plain Python floats in lists before each numpy
#: flush (object header + list slot), and the transient flush array adds
#: one 8-byte copy per value.
TELEMETRY_BYTES_PER_VALUE = 64

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_fleet.json")


def scaled_storm(jobs: int, total_steps: int) -> ScenarioSpec:
    """``revocation_storm`` scaled to ``jobs`` concurrent jobs."""
    specs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=total_steps,
                workers=(("k80", "europe-west1"),) * REFERENCE["workers_per_job"],
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(jobs))
    return ScenarioSpec(
        name=f"revocation_storm_x{jobs}",
        description=f"revocation_storm scaled to {jobs} jobs",
        jobs=specs,
        pool_capacity={("k80", "europe-west1"):
                       REFERENCE["pool_slots_per_job"] * jobs},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5)


def _run_fleet(scenario: ScenarioSpec, scheduler: str,
               fast_forward=None, trace_level=None, telemetry=None):
    run = FleetRun(scenario, RandomStreams(REFERENCE["seed"]),
                   scheduler=scheduler, fast_forward=fast_forward,
                   trace_level=trace_level or "full", telemetry=telemetry)
    started = time.perf_counter()
    payload = run.run()
    wall = time.perf_counter() - started
    return payload, wall, run.events_processed


def _measure_scheduler(scenario: ScenarioSpec, scheduler: str):
    best_wall, payload, events = float("inf"), None, 0
    for _ in range(REPETITIONS):
        payload, wall, events = _run_fleet(scenario, scheduler)
        best_wall = min(best_wall, wall)
    return {
        "wall_seconds": round(best_wall, 3),
        "events_processed": events,
        "events_per_sec": round(events / best_wall, 1),
    }, payload


def _peak_traced_mb(scenario: ScenarioSpec, trace_level: str,
                    telemetry_chunk_rows=None):
    spool_dir = None
    telemetry = None
    if telemetry_chunk_rows is not None:
        spool_dir = tempfile.mkdtemp(prefix="bench-telemetry-")
        telemetry = TelemetrySpool(TelemetryConfig(
            spool_dir=spool_dir, chunk_rows=telemetry_chunk_rows))
    tracemalloc.start()
    try:
        payload, _, _ = _run_fleet(scenario, "wakeset",
                                   trace_level=trace_level,
                                   telemetry=telemetry)
        if telemetry is not None:
            telemetry.close()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)
    return round(peak / (1024.0 * 1024.0), 3), payload


def _measure_pair(total_steps: int, identity_steps: int) -> dict:
    """Measure both schedulers and verify every payload contract."""
    scenario = scaled_storm(REFERENCE["jobs"], total_steps)
    wakeset, payload_wakeset = _measure_scheduler(scenario, "wakeset")
    roundrobin, payload_roundrobin = _measure_scheduler(scenario, "roundrobin")
    assert payload_wakeset == payload_roundrobin, \
        "wake-set payload diverged from the round-robin reference"

    # The expensive identity axes run on a smaller fleet: the chunked core
    # path simulates every step event-by-event.
    identity_scenario = scaled_storm(REFERENCE["jobs"], identity_steps)
    reference_payload, _, _ = _run_fleet(identity_scenario, "wakeset")
    chunked_payload, _, _ = _run_fleet(identity_scenario, "roundrobin",
                                       fast_forward=False)
    assert chunked_payload == reference_payload, \
        "chunked-core payload diverged from the fast-forward payload"
    serial = run_scenario(identity_scenario, replicates=2, seed=7, workers=1)
    parallel = run_scenario(identity_scenario, replicates=2, seed=7, workers=4)
    assert serial.payloads() == parallel.payloads(), \
        "parallel sweep payloads diverged from serial"

    full_mb, payload_full = _peak_traced_mb(identity_scenario, "full")
    summary_mb, payload_summary = _peak_traced_mb(identity_scenario, "summary")
    assert payload_summary == payload_full == reference_payload, \
        "summary-trace payload diverged from the full-trace payload"

    # Telemetry export must be memory-bounded: the spool buffers at most
    # chunk_rows step rows per job before flushing to disk, so its peak
    # overhead is capped by jobs x chunk_rows x columns — independent of
    # how many total rows the fleet produces.
    telemetry_mb, payload_telemetry = _peak_traced_mb(
        identity_scenario, "summary",
        telemetry_chunk_rows=TELEMETRY_CHUNK_ROWS)
    assert payload_telemetry == reference_payload, \
        "telemetry-attached payload diverged from the reference payload"
    telemetry_overhead_mb = round(telemetry_mb - summary_mb, 3)
    telemetry_bound_mb = round(
        REFERENCE["jobs"] * TELEMETRY_CHUNK_ROWS * 6
        * TELEMETRY_BYTES_PER_VALUE / (1024.0 * 1024.0), 3)
    assert telemetry_overhead_mb <= telemetry_bound_mb, (
        f"telemetry export peak overhead {telemetry_overhead_mb} MB exceeds "
        f"the spool buffer bound {telemetry_bound_mb} MB")

    return {
        "total_steps_per_job": total_steps,
        "wakeset": wakeset,
        "roundrobin": roundrobin,
        "speedup_events_per_sec": round(
            wakeset["events_per_sec"] / roundrobin["events_per_sec"], 2),
        "bit_identical_payloads": {
            "scheduler": True, "core_path": True, "sweep_workers": True,
            "trace_level": True,
        },
        "peak_traced_mb": {
            "trace_level_full": full_mb,
            "trace_level_summary": summary_mb,
            "summary_with_telemetry": telemetry_mb,
            "telemetry_overhead": telemetry_overhead_mb,
            "telemetry_overhead_bound": telemetry_bound_mb,
            "telemetry_chunk_rows": TELEMETRY_CHUNK_ROWS,
            "identity_fleet_steps_per_job": identity_steps,
        },
        "fleet": {
            "jobs": payload_wakeset["jobs_total"],
            "completed": payload_wakeset["jobs_completed"],
            "stalled": payload_wakeset["jobs_stalled"],
            "revocations": payload_wakeset["revocations"],
            "replacements_admitted": payload_wakeset["replacements_admitted"],
            "makespan_hours": round(
                payload_wakeset["makespan_seconds"] / 3600.0, 3),
        },
    }


def main(argv=None) -> int:
    parser = make_parser(
        __doc__, output=OUTPUT,
        check_help="compare the quick wakeset-vs-roundrobin "
                   "events/sec ratio against a committed baseline "
                   "(default benchmarks/BENCH_fleet.json) and exit "
                   "non-zero on a >30%% regression")
    args = parser.parse_args(argv)

    quick = _measure_pair(QUICK_STEPS, identity_steps=QUICK_STEPS)
    print(json.dumps({"quick": quick}, indent=2))
    measured = {"quick": quick}
    status = 0
    if args.check is not None:
        status = ratio_gate(
            args.check, quick,
            ratio_path=("speedup_events_per_sec",),
            label="wakeset speedup over roundrobin",
            tolerance=REGRESSION_TOLERANCE,
            informative_path=("wakeset", "events_per_sec"),
            informative_label="wakeset events/sec")
    elif not args.quick:
        full = _measure_pair(REFERENCE["total_steps"],
                             identity_steps=QUICK_STEPS)
        measured["full"] = full
        baseline = {
            "reference_fleet": REFERENCE,
            "full": full,
            "quick": quick,
            "environment": environment_block(),
            "note": ("events_per_sec counts processed fleet events (chunk "
                     "completions + fired heap events) for one 100-job "
                     "revocation_storm fleet in one process.  Tracked "
                     "contracts: fleet payloads stay bit-identical across "
                     "scheduler choice, core path, sweep worker count, and "
                     "trace level, and the wake-set scheduler stays >= 5x "
                     "the round-robin reference's events/sec on the full "
                     "100-job reference fleet.  Regenerate with `python "
                     "benchmarks/fleet_baseline.py` on the same host class "
                     "when the fleet loop, session fast-forward, or "
                     "revocation sampler changes."),
        }
        print(json.dumps({"full": full}, indent=2))
        print()
        write_json(OUTPUT, baseline)
    if args.json_out:
        write_json(args.json_out, measured)
    return status


if __name__ == "__main__":
    sys.exit(main())
