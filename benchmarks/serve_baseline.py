"""Record the placement-service baseline (``BENCH_serve.json``).

Replays a deterministic query stream against a :class:`repro.serve
.PlacementService` backed by a churning transient pool — the serving
shape of the ROADMAP's "placement advisor as an online service" item —
and records:

* **queries/sec** on the full replay (batched ``answer_many``, pool
  version bumps interleaved so the decision cache is repeatedly
  invalidated and refilled, like a live fleet would);
* **p50/p99 latency** of single ``answer`` calls over a sampled slice of
  the same stream;
* **cold-scoring speedup** of the vectorized score table over the legacy
  per-option sampling backend (fresh advisors, every option scored once
  per duration) — the ratio the CI smoke gate tracks, since both
  backends run the same machine in the same process.

It also verifies the serve-layer contracts: batch answers bit-identical
to sequential singles, table and sampling backends bit-identical, and
decisions deterministic across fresh services.

Run with::

    python benchmarks/serve_baseline.py            # full baseline, writes JSON
    python benchmarks/serve_baseline.py --quick    # quick config only, no write
    python benchmarks/serve_baseline.py --quick --check
        # measure the quick config and fail (exit 1) if the table-vs-
        # sampling cold-scoring speedup regressed more than 30% against
        # the committed BENCH_serve.json
    python benchmarks/serve_baseline.py --quick --json-out out.json
        # also dump the measured numbers (CI uploads these as artifacts)
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time

import numpy as np

from _common import environment_block, make_parser, ratio_gate, write_json
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.scenarios.pool import TransientPool
from repro.serve.service import PlacementService
from repro.simulation.engine import Simulator

#: The reference replay: 1M queries over a discrete (gpu, duration,
#: utc-hour) grid, pool churn every ``churn_every`` queries.
REFERENCE = {"queries": 1_000_000, "latency_sample": 20_000,
             "churn_every": 256, "batch": 1_000, "seed": 0,
             "samples_per_option": 400}

#: Quick variant used by the CI smoke gate.
QUICK = {"queries": 50_000, "latency_sample": 5_000,
         "churn_every": 256, "batch": 1_000, "seed": 0,
         "samples_per_option": 400}

#: Allowed fractional cold-scoring-speedup regression before ``--check``
#: fails.
REGRESSION_TOLERANCE = 0.30

#: The query grid: every combination appears in the replay stream.
GPUS = ("k80", "p100", "v100")
DURATIONS = tuple(float(hours) for hours in range(1, 25))
UTC_HOURS = tuple(hour / 2.0 for hour in range(48))

#: Cold-scoring workload (the gate): score every (gpu, hour) option at
#: each duration with a fresh advisor under each backend.
COLD_DURATIONS = DURATIONS[:12]

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_serve.json")

#: Pool cells covering every replay GPU (capacities > 1 so churn can
#: acquire/release without exhausting a cell).
POOL_CAPACITY = {("k80", "us-west1"): 4, ("k80", "europe-west1"): 4,
                 ("p100", "us-central1"): 4, ("p100", "europe-west1"): 4,
                 ("v100", "us-west1"): 4, ("v100", "us-central1"): 4}


def build_service(config: dict, score_backend: str = "table",
                  with_pool: bool = True) -> PlacementService:
    pool = None
    if with_pool:
        pool = TransientPool(Simulator(), dict(POOL_CAPACITY),
                             reclaim_seconds=600.0)
    advisor = LaunchAdvisor(samples_per_option=config["samples_per_option"],
                            seed=config["seed"], score_backend=score_backend)
    return PlacementService(advisor=advisor, pool=pool)


def query_stream(count: int):
    """A deterministic replay stream cycling the discrete query grid.

    Stride-based index mixing (coprime strides) so consecutive queries
    differ in every axis — the worst case for a naive per-query cache,
    the intended case for the epoch-keyed decision cache.
    """
    gpus, durations, hours = GPUS, DURATIONS, UTC_HOURS
    for index in range(count):
        yield PlacementQuery(
            gpu_name=gpus[(index * 7) % len(gpus)],
            duration_hours=durations[(index * 11) % len(durations)],
            hour_of_day_utc=hours[(index * 13) % len(hours)])


def churn(pool: TransientPool, step: int) -> None:
    """One deterministic pool transition (bumps the pool version)."""
    cells = sorted(POOL_CAPACITY)
    gpu, region = cells[step % len(cells)]
    if pool.available(gpu, region) > 0:
        pool.acquire(gpu, region)
    else:
        pool.release(gpu, region)


def measure_replay(config: dict) -> dict:
    """Throughput + latency of the batched replay with pool churn."""
    service = build_service(config)
    service.warm()

    async def replay() -> float:
        batch_size = config["batch"]
        churn_every = config["churn_every"]
        batch: list = []
        started = time.perf_counter()
        step = 0
        for index, query in enumerate(query_stream(config["queries"])):
            batch.append(query)
            if len(batch) == batch_size:
                await service.answer_many(batch)
                batch.clear()
            if (index + 1) % churn_every == 0:
                churn(service.pool, step)
                step += 1
        if batch:
            await service.answer_many(batch)
        return time.perf_counter() - started

    wall = asyncio.run(replay())

    async def latencies() -> np.ndarray:
        samples = np.empty(config["latency_sample"])
        for index, query in enumerate(query_stream(config["latency_sample"])):
            started = time.perf_counter()
            await service.answer(query)
            samples[index] = time.perf_counter() - started
        return samples

    sampled = asyncio.run(latencies())
    stats = service.stats()
    return {
        "queries": config["queries"],
        "wall_seconds": round(wall, 3),
        "queries_per_sec": round(config["queries"] / wall, 1),
        "latency_p50_us": round(float(np.percentile(sampled, 50)) * 1e6, 2),
        "latency_p99_us": round(float(np.percentile(sampled, 99)) * 1e6, 2),
        "latency_sample": config["latency_sample"],
        "cache_hits": stats["cache_hits"],
        "cache_invalidations": stats["cache_invalidations"],
        "pool_version_final": stats["pool_version"],
    }


def measure_cold_scoring(config: dict) -> dict:
    """Score the full option grid cold under each backend; gate ratio."""
    walls = {}
    for backend in ("table", "sampling"):
        service = build_service(config, score_backend=backend,
                                with_pool=False)
        queries = [PlacementQuery(gpu_name=gpu, duration_hours=duration,
                                  hour_of_day_utc=hour)
                   for gpu in GPUS
                   for duration in COLD_DURATIONS
                   for hour in UTC_HOURS]
        started = time.perf_counter()
        asyncio.run(service.answer_many(queries))
        walls[backend] = time.perf_counter() - started
    return {
        "options": len(GPUS) * len(UTC_HOURS),
        "durations": len(COLD_DURATIONS),
        "table_wall_seconds": round(walls["table"], 3),
        "sampling_wall_seconds": round(walls["sampling"], 3),
        "speedup_cold_scoring": round(walls["sampling"] / walls["table"], 2),
    }


def verify_contracts(config: dict) -> dict:
    """The serve-layer identity contracts (asserted, and recorded)."""
    probe = dict(config, queries=2_000)

    # Batch == sequential: same advisor seed, same pool history.
    batch_service = build_service(probe)
    batched = asyncio.run(
        batch_service.answer_many(list(query_stream(probe["queries"]))))
    single_service = build_service(probe)

    async def sequential():
        return [await single_service.answer(query)
                for query in query_stream(probe["queries"])]

    singles = asyncio.run(sequential())
    assert batched == singles, "batch decisions diverged from sequential"

    # Table == sampling, decision for decision.
    sampling_service = build_service(probe, score_backend="sampling")
    sampled = asyncio.run(
        sampling_service.answer_many(list(query_stream(probe["queries"]))))
    assert sampled == batched, "sampling-backend decisions diverged from table"

    # Determinism across fresh services.
    again = asyncio.run(build_service(probe).answer_many(
        list(query_stream(probe["queries"]))))
    assert again == batched, "fresh service produced different decisions"

    return {"batch_equals_sequential": True, "table_equals_sampling": True,
            "deterministic": True, "probe_queries": probe["queries"]}


def _measure(config: dict) -> dict:
    contracts = verify_contracts(config)
    return {
        "replay": measure_replay(config),
        "cold_scoring": measure_cold_scoring(config),
        "bit_identical_decisions": contracts,
    }


def main(argv=None) -> int:
    parser = make_parser(
        __doc__, output=OUTPUT,
        check_help="compare the quick table-vs-sampling cold-"
                   "scoring speedup against a committed baseline "
                   "(default benchmarks/BENCH_serve.json) and exit "
                   "non-zero on a >30%% regression")
    args = parser.parse_args(argv)

    quick = _measure(QUICK)
    print(json.dumps({"quick": quick}, indent=2))
    measured = {"quick": quick}
    status = 0
    if args.check is not None:
        status = ratio_gate(
            args.check, quick,
            ratio_path=("cold_scoring", "speedup_cold_scoring"),
            label="score-table speedup over sampling",
            tolerance=REGRESSION_TOLERANCE,
            informative_path=("replay", "queries_per_sec"),
            informative_label="queries/sec")
    elif not args.quick:
        full = _measure(REFERENCE)
        measured["full"] = full
        baseline = {
            "reference_replay": REFERENCE,
            "full": full,
            "quick": quick,
            "environment": environment_block(),
            "note": ("queries_per_sec replays the (gpu, duration, utc-hour) "
                     "grid through PlacementService.answer_many batches with "
                     "a pool transition every churn_every queries (decision "
                     "cache repeatedly invalidated); latency percentiles "
                     "time single answer() awaits.  Tracked contracts: "
                     "batch == sequential decisions, table == sampling "
                     "decisions, deterministic replay, and the vectorized "
                     "score table stays well ahead of the legacy per-"
                     "option sampler on cold scoring.  Regenerate with "
                     "`python benchmarks/serve_baseline.py` on the same "
                     "host class when the advisor, score table, or serve "
                     "layer changes."),
        }
        print(json.dumps({"full": full}, indent=2))
        print()
        write_json(OUTPUT, baseline)
    if args.json_out:
        write_json(args.json_out, measured)
    return status


if __name__ == "__main__":
    sys.exit(main())
