"""Record the simulation-core performance baseline (``BENCH_core.json``).

Runs a reference training session — ResNet-32 on 8 K80 workers, 100k
steps, checkpoints every 4k steps — through the discrete-event core twice:
once on the chunked event-by-event path and once on the vectorized
fast-forward path, verifies the two traces are bit-identical, and records
steps/second, chunk events/second, wall time and peak traced memory for
each.  A smaller 20k-step *quick* configuration is measured too; CI replays
it as a throughput regression gate.

Run with::

    python benchmarks/core_baseline.py              # full baseline, writes JSON
    python benchmarks/core_baseline.py --quick      # quick config only, no write
    python benchmarks/core_baseline.py --quick --check
        # measure the quick config and fail (exit 1) if fast-path steps/sec
        # regressed more than 30% against the committed BENCH_core.json
"""

from __future__ import annotations

import json
import os
import sys
import time
import tracemalloc

from _common import environment_block, make_parser, ratio_gate, write_json
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.workloads.catalog import default_catalog

#: The reference session of the baseline (and of the ISSUE-2 acceptance
#: criterion): 100k steps across 8 homogeneous workers.
REFERENCE = {"model": "resnet_32", "workers": 8, "gpu": "k80",
             "total_steps": 100_000, "checkpoint_interval_steps": 4_000,
             "steps_per_event": 10, "seed": 0}

#: Quick variant used by the CI smoke gate.
QUICK_STEPS = 20_000

#: Allowed fractional steps/sec regression before ``--check`` fails.
REGRESSION_TOLERANCE = 0.30

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_core.json")


def _run_once(total_steps: int, fast_forward: bool, trace_memory: bool = False):
    catalog = default_catalog()
    profile = catalog.profile(REFERENCE["model"])
    job = TrainingJob(profile=profile, total_steps=total_steps,
                      checkpoint_interval_steps=REFERENCE["checkpoint_interval_steps"])
    cluster = ClusterSpec.from_counts(**{REFERENCE["gpu"]: REFERENCE["workers"]})
    session = TrainingSession(
        Simulator(), cluster, job, streams=RandomStreams(REFERENCE["seed"]),
        steps_per_event=REFERENCE["steps_per_event"], fast_forward=fast_forward)
    peak_bytes = 0
    if trace_memory:
        tracemalloc.start()
    started = time.perf_counter()
    trace = session.run_to_completion()
    wall = time.perf_counter() - started
    if trace_memory:
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return session, trace, wall, peak_bytes


def _measure(total_steps: int, fast_forward: bool) -> dict:
    # Timing and memory are measured on separate runs: tracemalloc hooks
    # every allocation and would slow both paths (unevenly) by several x.
    session, trace, wall, _ = _run_once(total_steps, fast_forward)
    _, _, _, peak_bytes = _run_once(total_steps, fast_forward, trace_memory=True)
    return {
        "wall_seconds": round(wall, 4),
        "steps_per_sec": round(trace.total_steps / wall, 1),
        "chunk_events_per_sec": round(len(trace.step_records) / wall, 1),
        "fast_forwarded_chunks": session.fast_forward_chunks,
        "peak_traced_mb": round(peak_bytes / (1024.0 * 1024.0), 3),
        "trace_step_columns_kb": round(trace.step_records.nbytes / 1024.0, 1),
    }, trace


def _bit_identical(a, b) -> bool:
    return (a.step_records == b.step_records
            and a.checkpoint_records == b.checkpoint_records
            and a.end_time == b.end_time)


def _measure_pair(total_steps: int) -> dict:
    chunked, chunked_trace = _measure(total_steps, fast_forward=False)
    fast, fast_trace = _measure(total_steps, fast_forward=True)
    identical = _bit_identical(chunked_trace, fast_trace)
    assert identical, "fast-forward trace diverged from the chunked trace"
    return {
        "total_steps": total_steps,
        "chunked": chunked,
        "fast_forward": fast,
        "speedup_steps_per_sec": round(
            fast["steps_per_sec"] / chunked["steps_per_sec"], 2),
        "bit_identical": identical,
    }


def main(argv=None) -> int:
    parser = make_parser(
        __doc__, output=OUTPUT,
        check_help="compare the quick fast-vs-chunked speedup ratio "
                   "against a committed baseline (default benchmarks/"
                   "BENCH_core.json) and exit non-zero on a >30%% "
                   "regression; the ratio is measured on one host in "
                   "one process, so the check is host-independent")
    args = parser.parse_args(argv)

    quick = _measure_pair(QUICK_STEPS)
    print(json.dumps({"quick": quick}, indent=2))
    if args.json_out:
        write_json(args.json_out, {"quick": quick})
    if args.check is not None:
        return ratio_gate(
            args.check, quick,
            ratio_path=("speedup_steps_per_sec",),
            label="fast-path speedup over chunked",
            tolerance=REGRESSION_TOLERANCE, precision=1,
            informative_path=("fast_forward", "steps_per_sec"),
            informative_label="fast-path steps/sec")
    if args.quick:
        return 0

    full = _measure_pair(REFERENCE["total_steps"])
    baseline = {
        "reference_session": REFERENCE,
        "full": full,
        "quick": quick,
        "environment": environment_block(),
        "note": ("steps_per_sec is simulated training steps per wall-clock "
                 "second for one session (single process).  The tracked "
                 "contracts: the fast-forward path stays bit-identical to "
                 "the chunked path, and its steps/sec stays >= 10x the "
                 "chunked loop on the 100k-step reference session.  "
                 "Regenerate with `python benchmarks/core_baseline.py` on "
                 "the same host class when the core changes."),
    }
    print(json.dumps({"full": full}, indent=2))
    print()
    write_json(OUTPUT, baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
