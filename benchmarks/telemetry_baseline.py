"""Record the out-of-core telemetry analysis baseline (``BENCH_telemetry.json``).

Pins the two contracts behind ``repro-telemetry report`` and the
:mod:`repro.analysis.streaming` accumulators:

* **Value identity** — on the ``multi_region_hetero`` artifact the
  streaming report equals the materialized (full ``step_rows`` /
  ``draw_rows``) report float for float, and stays equal when the
  accumulator block size changes (canonical re-blocking makes the float
  operation sequence a pure function of the value stream);
* **Bounded memory** — tracemalloc peak of a fleet-wide streaming
  describe over every job's step-time chunks stays O(block_rows): flat
  as the calibration fleet grows 10x in job count.  The gated number is
  ``memory_flatness = peak_small_mb / peak_large_mb`` (a ratio, so it is
  host independent); a leak that scales analysis memory with fleet size
  drives it toward 0.  The ``fleet_report`` peaks are recorded as an
  informative aside — the report *document* is inherently O(jobs) (one
  row per job), so only sub-linear growth is expected there, not
  flatness.

Run with::

    python benchmarks/telemetry_baseline.py            # full baseline, writes JSON
    python benchmarks/telemetry_baseline.py --quick    # quick config only, no write
    python benchmarks/telemetry_baseline.py --quick --check
        # measure the quick config and fail (exit 1) if memory flatness
        # regressed more than 35% against the committed BENCH_telemetry.json
    python benchmarks/telemetry_baseline.py --quick --json-out out.json
        # also dump the measured numbers (CI uploads these as artifacts)
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import tracemalloc

from _common import environment_block, make_parser, ratio_gate, write_json
from repro.analysis.streaming import StreamingDescribe
from repro.scenarios.catalog import get_scenario
from repro.telemetry.export import export_fleet_telemetry
from repro.telemetry.fleets import calibration_scenario
from repro.telemetry.reader import TelemetryReader
from repro.telemetry.report import fleet_report

#: The reference analysis configuration.  ``block_rows`` is the
#: accumulator block/run size (the memory bound); the calibration fleet
#: is scaled 10x between the small and large artifacts, with per-job
#: row counts held fixed, so a flat peak isolates fleet-size scaling.
REFERENCE = {"identity_scenario": "multi_region_hetero", "seed": 0,
             "chunk_rows": 256, "block_rows": 1024,
             "small_jobs_per_cell": 8, "large_jobs_per_cell": 80}

#: Quick variant used by the CI smoke gate (still a 10x job-count span).
QUICK_JOBS_PER_CELL = (4, 40)

#: Allowed fractional flatness regression before ``--check`` fails.
REGRESSION_TOLERANCE = 0.35

#: Hard floor on memory flatness, asserted on every run: below this the
#: accumulators are scaling with fleet size, not with block_rows.
FLATNESS_FLOOR = 0.4

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_telemetry.json")


def _step_times(chunk):
    steps = chunk[:, 3]
    mask = steps > 0
    return (chunk[mask, 2] - chunk[mask, 1]) / steps[mask]


def _export_calibration(directory: str, jobs_per_cell: int) -> str:
    path = os.path.join(directory, f"calibration_{jobs_per_cell}.npz")
    export_fleet_telemetry(
        calibration_scenario(jobs_per_cell=jobs_per_cell), path,
        seed=REFERENCE["seed"], chunk_rows=REFERENCE["chunk_rows"])
    return path


def _accumulator_peak_mb(path: str, block_rows: int):
    """Peak traced MB of a fleet-wide streaming describe over ``path``."""
    with TelemetryReader(path) as reader:
        ranks = list(reader.ranks)
        tracemalloc.start()
        values = 0
        with StreamingDescribe(block_rows=block_rows) as describe:
            for rank in ranks:
                for chunk in reader.step_chunks(rank):
                    times = _step_times(chunk)
                    values += int(times.size)
                    describe.update(times)
            summary = describe.result()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return round(peak / (1024.0 * 1024.0), 4), values, summary


def _report_peak_mb(path: str, block_rows: int) -> float:
    """Peak traced MB of the full (O(jobs)-document) fleet report."""
    with TelemetryReader(path) as reader:
        tracemalloc.start()
        fleet_report(reader, block_rows=block_rows)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return round(peak / (1024.0 * 1024.0), 4)


def _verify_identity(directory: str) -> dict:
    """Streaming report == materialized report, at every block size.

    Canonical re-blocking makes the accumulators' float operations a
    pure function of (value stream, block_rows): for any fixed block
    size, chunk-fed and materialized feeding are bit-identical.
    Different block sizes are different (equally valid) float
    sequences, so identity is asserted per block size, not across them.
    """
    path = os.path.join(directory, "identity.npz")
    export_fleet_telemetry(
        get_scenario(REFERENCE["identity_scenario"]), path,
        seed=REFERENCE["seed"], chunk_rows=REFERENCE["chunk_rows"])
    with TelemetryReader(path) as reader:
        materialized = fleet_report(reader, materialized=True)
        for block_rows in (REFERENCE["block_rows"], 97, 7919):
            streamed = fleet_report(reader, block_rows=block_rows)
            reference = fleet_report(reader, materialized=True,
                                     block_rows=block_rows)
            assert streamed == reference, (
                f"streaming report (block_rows={block_rows}) diverged "
                f"from the materialized report")
    return {
        "scenario": REFERENCE["identity_scenario"],
        "jobs": len(materialized["jobs"]),
        "step_rows": materialized["fleet"]["step_rows"],
        "streaming_equals_materialized": True,
    }


def _measure(small_jobs_per_cell: int, large_jobs_per_cell: int) -> dict:
    block_rows = REFERENCE["block_rows"]
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as directory:
        identity = _verify_identity(directory)
        small = _export_calibration(directory, small_jobs_per_cell)
        large = _export_calibration(directory, large_jobs_per_cell)
        peak_small, values_small, _ = _accumulator_peak_mb(small, block_rows)
        peak_large, values_large, _ = _accumulator_peak_mb(large, block_rows)
        report_small = _report_peak_mb(small, block_rows)
        report_large = _report_peak_mb(large, block_rows)
    flatness = round(peak_small / peak_large, 3)
    assert flatness >= FLATNESS_FLOOR, (
        f"streaming analysis peak grew with fleet size: "
        f"{peak_small} MB -> {peak_large} MB over a "
        f"{values_large / values_small:.0f}x value span "
        f"(flatness {flatness} < {FLATNESS_FLOOR})")
    return {
        "jobs_per_cell": [small_jobs_per_cell, large_jobs_per_cell],
        "jobs": [6 * small_jobs_per_cell, 6 * large_jobs_per_cell],
        "step_time_values": [values_small, values_large],
        "accumulator_peak_mb": {"small": peak_small, "large": peak_large},
        "memory_flatness": flatness,
        "report_peak_mb": {"small": report_small, "large": report_large},
        "identity": identity,
    }


def main(argv=None) -> int:
    parser = make_parser(
        __doc__, output=OUTPUT,
        check_help="compare the quick memory-flatness ratio against a "
                   "committed baseline (default benchmarks/"
                   "BENCH_telemetry.json) and exit non-zero on a >35%% "
                   "regression")
    args = parser.parse_args(argv)

    quick = _measure(*QUICK_JOBS_PER_CELL)
    print(json.dumps({"quick": quick}, indent=2))
    measured = {"quick": quick}
    status = 0
    if args.check is not None:
        status = ratio_gate(
            args.check, quick,
            ratio_path=("memory_flatness",),
            label="telemetry analysis memory flatness",
            tolerance=REGRESSION_TOLERANCE,
            precision=3)
    elif not args.quick:
        full = _measure(REFERENCE["small_jobs_per_cell"],
                        REFERENCE["large_jobs_per_cell"])
        measured["full"] = full
        baseline = {
            "reference_analysis": REFERENCE,
            "full": full,
            "quick": quick,
            "environment": environment_block(),
            "note": ("memory_flatness = tracemalloc peak of a fleet-wide "
                     "streaming describe on the small calibration fleet "
                     "divided by the same peak on the 10x-jobs fleet; 1.0 "
                     "is perfectly flat, and a leak that scales analysis "
                     "memory with fleet size drives it toward 0.  Peaks "
                     "are host specific, the ratio is not.  The identity "
                     "block re-asserts that the streaming fleet report "
                     "equals the materialized one float for float across "
                     "accumulator block sizes.  Regenerate with `python "
                     "benchmarks/telemetry_baseline.py` when the streaming "
                     "accumulators, the telemetry reader, or the report "
                     "aggregation changes."),
        }
        print(json.dumps({"full": full}, indent=2))
        print()
        write_json(OUTPUT, baseline)
    if args.json_out:
        write_json(args.json_out, measured)
    return status


if __name__ == "__main__":
    sys.exit(main())
