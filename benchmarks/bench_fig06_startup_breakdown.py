"""Fig. 6: startup-time breakdown of newly requested servers.

Regenerates the provisioning/staging/booting breakdown for transient and
on-demand K80/P100 servers in us-east1 and us-west1.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.measurement.startup_campaign import run_startup_breakdown_campaign


def test_fig6_startup_breakdown(benchmark, sweep_workers, sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: run_startup_breakdown_campaign(samples_per_cell=50, seed=16,
                                               workers=sweep_workers,
                                               cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    rows = []
    for cell in result.cells:
        rows.append([cell.region_name, cell.gpu_name,
                     "transient" if cell.transient else "on-demand",
                     cell.provisioning_mean, cell.staging_mean, cell.booting_mean,
                     cell.total_mean])
    print()
    print(format_table(["region", "GPU", "class", "provisioning (s)", "staging (s)",
                        "booting (s)", "total (s)"], rows,
                       title="Fig. 6 reproduction: startup breakdown",
                       float_format="{:.1f}"))

    for region in ("us-east1", "us-west1"):
        for gpu in ("k80", "p100"):
            transient = result.cell(region, gpu, True)
            # Transient servers start in under 100 seconds.
            assert transient.total_mean < 100.0
            # Transient startup is slower than on-demand but only by tens of
            # seconds (11.14 s for K80, 21.38 s for P100 in the paper).
            slowdown = result.transient_slowdown(region, gpu)
            assert 5.0 < slowdown < 35.0
        # Transient P100 startup is ~8.7% slower than transient K80.
        ratio = (result.cell(region, "p100", True).total_mean
                 / result.cell(region, "k80", True).total_mean)
        print(f"{region}: transient P100/K80 startup ratio = {ratio:.3f}")
        assert 1.02 < ratio < 1.18
    # Every breakdown is dominated by staging + booting, as in the figure.
    for cell in result.cells:
        assert cell.staging_mean + cell.booting_mean > cell.provisioning_mean
