"""Fig. 9: time-of-day impact on revocations.

Regenerates the per-GPU hour-of-day revocation histograms (local time) and
checks the paper's observations: K80 revocations peak in the late morning
and no V100 revocations occur between 4 PM and 8 PM.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table


def test_fig9_time_of_day(benchmark, revocation_campaign):
    histograms = benchmark.pedantic(
        lambda: {gpu: revocation_campaign.hour_of_day_histogram(gpu)
                 for gpu in ("k80", "p100", "v100")},
        rounds=1, iterations=1)

    rows = [[str(hour)] + [int(histograms[gpu][hour]) for gpu in ("k80", "p100", "v100")]
            for hour in range(24)]
    print()
    print(format_table(["hour (local)", "K80", "P100", "V100"], rows,
                       title="Fig. 9 reproduction: revocations per local hour"))

    k80 = histograms["k80"]
    v100 = histograms["v100"]
    p100 = histograms["p100"]
    # Each GPU type saw a substantial number of revocations.
    assert k80.sum() > 40 and p100.sum() > 40 and v100.sum() > 40
    # K80 revocations concentrate in the late morning (peak around 10 AM).
    morning = k80[8:13].sum()
    night = k80[0:5].sum()
    print(f"K80 revocations 8-12h: {morning}, 0-4h: {night}")
    assert morning > 2 * max(1, night)
    assert int(np.argmax(k80)) in range(8, 15)
    # No V100 revocations between 4 PM and 8 PM local time.
    assert v100[16:20].sum() == 0
    # The three GPU types exhibit different hourly patterns.
    assert not np.array_equal(k80, v100)
