"""Ablation: checkpoint-interval trade-off on transient servers.

The checkpoint interval trades steady-state overhead (each checkpoint
serializes the model, Section IV) against exposure to revocations (work
since the last checkpoint is the worst-case loss under CM-DARE,
Section V-E).  This ablation sweeps the interval for a transient ResNet-32
cluster using the Eq. (4)-style decomposition and shows the expected
U-shape: very frequent checkpoints pay too much overhead, very rare ones
lose too much work per revocation.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.cloud.revocation import RevocationModel
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.step_time import StepTimeModel


def test_ablation_checkpoint_interval(benchmark, catalog):
    profile = catalog.profile("resnet_32")
    step_model = StepTimeModel()
    checkpoint_model = CheckpointTimeModel()
    revocation_model = RevocationModel()

    total_steps = 64_000
    cluster_speed = 2 * step_model.mean_speed(profile.gflops, "k80")
    checkpoint_time = checkpoint_model.mean_time(profile.checkpoint)
    region, gpu, workers = "us-east1", "k80", 2

    def expected_total_time(interval: int) -> float:
        compute = total_steps / cluster_speed
        checkpoints = math.ceil(total_steps / interval) * checkpoint_time
        duration_hours = (compute + checkpoints) / 3600.0
        expected_revocations = workers * revocation_model.revocation_probability(
            gpu, region, duration_hours)
        # Under CM-DARE the loss per revocation is bounded by the work since
        # the last checkpoint (half an interval in expectation) plus the
        # replacement gap.
        lost_steps = expected_revocations * interval / 2.0
        replacement = expected_revocations * (85.0 + 20.0)
        return compute + checkpoints + lost_steps / cluster_speed + replacement

    intervals = (250, 1000, 4000, 16_000, 64_000)
    totals = benchmark.pedantic(
        lambda: {interval: expected_total_time(interval) for interval in intervals},
        rounds=1, iterations=1)

    print()
    print(format_table(
        ["checkpoint interval (steps)", "expected completion time (h)"],
        [[interval, totals[interval] / 3600.0] for interval in intervals],
        title="Ablation: checkpoint interval on 2 transient K80s (ResNet-32, 64K steps)",
        float_format="{:.3f}"))

    best = min(totals, key=totals.get)
    print(f"best interval: {best} steps (the paper's examples use 4000)")
    # The sweep is U-shaped: both extremes are worse than the best choice.
    assert totals[250] > totals[best]
    assert totals[64_000] > totals[best]
    # The paper's 4K-step interval sits within a couple percent of the best.
    assert totals[4000] <= totals[best] * 1.02
    # Checkpointing every 250 steps costs hours of pure overhead.
    assert totals[250] - totals[best] > 0.2 * 3600.0
