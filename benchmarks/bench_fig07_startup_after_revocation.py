"""Fig. 7: replacement startup time, immediate vs. delayed requests.

Checks the paper's findings that requesting a replacement immediately after
a revocation does not lengthen startup (within ~4 s of delayed requests and
within ~3 s across GPU types) but makes it about four times more variable.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.measurement.startup_campaign import run_replacement_startup_campaign


def test_fig7_startup_after_revocation(benchmark, sweep_workers, sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: run_replacement_startup_campaign(samples_per_cell=60, seed=17,
                                                 workers=sweep_workers,
                                                 cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    rows = []
    for cell in result.cells:
        rows.append([cell.gpu_name, "immediate" if cell.immediate else "delayed",
                     cell.mean_seconds, cell.std_seconds, cell.cov])
    print()
    print(format_table(["GPU", "request", "mean (s)", "std (s)", "CoV"], rows,
                       title="Fig. 7 reproduction: replacement startup time",
                       float_format="{:.2f}"))

    immediate_means = []
    for gpu in ("k80", "p100", "v100"):
        immediate = result.cell(gpu, True)
        delayed = result.cell(gpu, False)
        immediate_means.append(immediate.mean_seconds)
        # Means within ~4 seconds of each other.
        assert abs(immediate.mean_seconds - delayed.mean_seconds) < 5.0
        # Immediate requests are about 4x more variable (12% vs 3% CoV).
        assert immediate.cov > 2.5 * delayed.cov
        assert 0.06 < immediate.cov < 0.20
        assert delayed.cov < 0.06
    # Any GPU type can serve as the replacement: means within a few seconds.
    assert max(immediate_means) - min(immediate_means) < 6.0
