"""Fig. 8: transient-server lifetime CDFs per region and GPU type.

Regenerates the lifetime CDF curves and checks the qualitative shapes the
paper highlights: europe-west1 K80s die early, us-west1 K80s survive, V100
servers have shorter mean time to revocation, and a large fraction of
servers reach the 24-hour maximum.
"""

from __future__ import annotations

from repro.analysis.figures import FigureSeries
from repro.cloud.regions import get_region
from repro.cloud.revocation import REVOCATION_CALIBRATION

HOUR_GRID = [1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 24]


def test_fig8_lifetime_cdfs(benchmark, revocation_campaign):
    def build_figures():
        figures = {}
        for gpu in ("k80", "p100", "v100"):
            figure = FigureSeries(title=f"Fig. 8: lifetime CDF ({gpu})",
                                  x_label="lifetime (hours)", y_label="CDF")
            for cell_gpu, region in sorted(REVOCATION_CALIBRATION):
                if cell_gpu != gpu:
                    continue
                cdf = revocation_campaign.lifetime_cdf(gpu, region, HOUR_GRID)
                figure.add_series(region, list(zip(HOUR_GRID, cdf)))
            figures[gpu] = figure
        return figures

    figures = benchmark.pedantic(build_figures, rounds=1, iterations=1)
    print()
    for figure in figures.values():
        print(figure.to_text())
        print()

    # CDFs are monotone and saturate below 1 (some servers reach 24 hours).
    for figure in figures.values():
        for series in figure.series.values():
            values = [v for _h, v in series]
            assert all(b >= a for a, b in zip(values, values[1:]))
            assert values[-1] <= 1.0

    # europe-west1 K80s are revoked much earlier than us-west1 K80s.
    europe = dict(figures["k80"].series["europe-west1"])
    west = dict(figures["k80"].series["us-west1"])
    assert europe[3] > 0.4
    assert west[3] < 0.12
    # A sizeable fraction of servers live to the 24-hour maximum.
    survivors = 1.0 - min(series[-1][1] for figure in figures.values()
                          for series in figure.series.values())
    print(f"largest surviving fraction across cells: {survivors:.2f}")
    assert survivors > 0.25
    # V100 mean time to revocation is shorter than K80's best region.
    v100_mttr = revocation_campaign.mean_time_to_revocation("v100", "us-central1")
    k80_mttr = revocation_campaign.mean_time_to_revocation("k80", "us-west1")
    print(f"MTTR v100/us-central1 = {v100_mttr:.1f}h, k80/us-west1 = {k80_mttr:.1f}h")
    assert v100_mttr < k80_mttr
    assert get_region("us-west1").offers("k80")
