"""Table IV: comparison of checkpoint-time prediction models.

Fits the four checkpoint-time regression models (univariate, multivariate,
PCA-reduced multivariate, SVR-RBF) on the twenty-model checkpoint dataset
and reports k-fold and test MAE, mirroring Table IV.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.modeling.checkpoint_predictor import (
    build_table4_models,
    evaluate_table4_models,
)


def test_table4_checkpoint_models(benchmark, catalog, checkpoint_campaign):
    measurements = checkpoint_campaign.measurements()
    rows = benchmark.pedantic(lambda: evaluate_table4_models(measurements, seed=0),
                              rounds=1, iterations=1)

    feature_names = {"sc": "Sc", "sd_sm": "Sd, Sm", "pca": "PCA(Sd, Sm, Si)"}
    table_rows = [[row.spec.name, feature_names[row.spec.feature_mode],
                   f"{row.kfold_mae:.3f} +- {row.kfold_mae_std:.3f}",
                   f"{row.test_mae:.3f}", f"{row.test_mape:.1f}%"]
                  for row in rows]
    print()
    print(format_table(["Regression Model", "Input Feature", "K-fold MAE", "Test MAE",
                        "Test MAPE"], table_rows,
                       title="Table IV reproduction (MAE in seconds)"))

    by_name = {row.spec.name: row for row in rows}
    mean_duration = sum(m.duration for m in measurements) / len(measurements)
    # Every model predicts well within the average checkpoint duration.
    assert all(row.test_mae < 0.25 * mean_duration for row in rows)
    # The paper's headline: checkpoint time is predicted with ~5.4% MAPE.
    best_mape = min(row.test_mape for row in rows)
    print(f"best test MAPE: {best_mape:.2f}%")
    assert best_mape < 12.0

    # The fitted models also serve for the ResNet-32 end-to-end example of
    # Section IV-C: the predicted checkpoint time is within a few percent of
    # the measured one.
    models = build_table4_models(measurements)
    files = catalog.profile("resnet_32").checkpoint
    measured = checkpoint_campaign.sample("resnet_32").mean_seconds
    predicted = models["Univariate"].predict_time(files)
    error = abs(predicted - measured) / measured
    print(f"ResNet-32: measured {measured:.2f}s, univariate prediction {predicted:.2f}s "
          f"({error * 100:.1f}% error; the paper reports 3.4%)")
    assert error < 0.10
    assert by_name["Univariate"].test_mae >= 0.0
