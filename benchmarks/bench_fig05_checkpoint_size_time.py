"""Fig. 5: checkpoint duration vs. checkpoint size across twenty models.

Also reproduces the Section IV-B cross-check that training and
checkpointing are sequential: 100 steps with a checkpoint take one
checkpoint-time longer than 100 steps without one.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import ascii_plot
from repro.analysis.tables import format_table
from repro.measurement.checkpoint_campaign import run_checkpoint_campaign


def test_fig5_checkpoint_size_vs_time(benchmark, catalog, checkpoint_campaign,
                                      sweep_workers, sweep_cache_dir):
    sequential = benchmark.pedantic(
        lambda: run_checkpoint_campaign(model_names=["resnet_32"], seed=15,
                                        catalog=catalog, workers=sweep_workers,
                                        cache_dir=sweep_cache_dir).sequential_check,
        rounds=1, iterations=1)

    points = sorted(checkpoint_campaign.scatter())
    rows = [[f"{size:.1f}", f"{seconds:.2f}", f"{cov:.3f}"]
            for size, seconds, cov in points]
    print()
    print(format_table(["checkpoint size (MB)", "checkpoint time (s)", "CoV"], rows,
                       title="Fig. 5 reproduction: checkpoint duration vs size"))
    print(ascii_plot([(size, seconds) for size, seconds, _cov in points]))

    sizes = np.array([size for size, _t, _c in points])
    times = np.array([t for _s, t, _c in points])
    correlation = np.corrcoef(sizes, times)[0, 1]
    print(f"corr(size, time) = {correlation:.4f}")
    assert correlation > 0.99
    assert all(cov < 0.12 for _s, _t, cov in points)

    with_ckpt, without_ckpt, difference, checkpoint_time = sequential
    print(f"100-step window: {with_ckpt:.2f}s with checkpoint vs {without_ckpt:.2f}s "
          f"without; difference {difference:.2f}s vs checkpoint time {checkpoint_time:.2f}s")
    # Training and checkpointing are sequential: the difference equals the
    # checkpoint time (the paper measures 3.71 s vs 3.84 s for ResNet-32).
    assert difference == np.float64(difference)
    assert abs(difference - checkpoint_time) / checkpoint_time < 0.3
    resnet32 = checkpoint_campaign.sample("resnet_32")
    assert resnet32.mean_seconds == np.clip(resnet32.mean_seconds, 3.3, 4.4)
