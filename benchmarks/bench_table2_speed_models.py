"""Table II: comparison of step-time prediction models.

Fits and evaluates the paper's eight regression models (GPU-agnostic
univariate/multivariate, GPU-specific linear and SVR variants for K80 and
P100) on the twenty-model measurement dataset and reports k-fold and test
MAE, mirroring Table II.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.modeling.speed_predictor import evaluate_table2_models


def test_table2_step_time_models(benchmark, full_speed_campaign):
    measurements = full_speed_campaign.measurements()
    rows = benchmark.pedantic(lambda: evaluate_table2_models(measurements, seed=0),
                              rounds=1, iterations=1)

    table_rows = []
    for row in rows:
        feature = {"cnorm": "Cnorm", "cm_cgpu": "Cm, Cgpu", "cm": "Cm"}[row.spec.feature_mode]
        table_rows.append([row.spec.name, feature,
                           f"{row.kfold_mae:.3f} +- {row.kfold_mae_std:.3f}",
                           f"{row.test_mae:.3f}", f"{row.test_mape:.1f}%"])
    print()
    print(format_table(["Regression Model", "Input Feature", "K-fold MAE",
                        "Test MAE", "Test MAPE"], table_rows,
                       title="Table II reproduction (MAE in seconds)"))

    by_name = {row.spec.name: row for row in rows}
    average_step_time = sum(m.step_time for m in measurements) / len(measurements)
    print(f"average step time across dataset: {average_step_time:.3f}s")

    # Shape checks mirroring the paper's narrative:
    # every model's test MAE is a small fraction of the average step time,
    assert all(row.test_mae < 0.45 * average_step_time for row in rows)
    # the GPU-specific SVR-RBF models give the best fit within their GPU family,
    assert (by_name["SVR RBF Kernel, K80"].kfold_mae
            <= by_name["Univariate, K80"].kfold_mae * 1.1)
    assert (by_name["SVR RBF Kernel, P100"].kfold_mae
            <= by_name["Univariate, P100"].kfold_mae * 1.1)
    # and the best GPU-specific model reaches a MAPE in the same band as the
    # paper's 9-14%.
    best_mape = min(row.test_mape for row in rows if row.spec.gpu_name is not None)
    print(f"best GPU-specific test MAPE: {best_mape:.1f}%")
    assert best_mape < 20.0
