"""Record the sharded fleet execution baseline (``BENCH_fleet_sharded.json``).

Runs the *reference sharded fleet* — the revocation storm spread across the
four K80 regions (us-east1, us-central1, us-west1, europe-west1; every
job's 3 workers in one region, 4 pool slots per job per region, queued
replacements, Fig. 9 late-morning epoch) — single-process and sharded
(``repro.scenarios.shard``) at 2 and 4 shards.  Each region is its own
connected component of the job/cell graph, so the partitioner spreads the
fleet evenly and the shards run genuinely concurrent simulators, with only
revocation draws crossing process boundaries.

It verifies the tentpole contract — sharded payloads bit-identical to the
single-process run at every shard count — and records wall-clock,
events/sec (summed across shards), and the sharded-vs-single speedup.
(Shard event counts can trail the single-process count by a few events:
after a shard's last job finishes it stops, while the single-process loop
keeps draining that component's no-op stragglers — stale reclaim returns —
until the *global* finish.  Those events change no state, so payloads are
unaffected.)

Speedup tracks ``usable_cpus``: on a single-CPU host the extra processes
cannot beat one (the draw-service round-trips are pure overhead there),
and the committed numbers record exactly that honestly.  On an N-core
host the shards simulate in parallel and the target is near-linear
scaling — >= 10x at 16 shards on a 16-core host for draw-sparse fleets —
so ``--check`` gates on the speedup *ratio* against the committed
baseline from a comparable host, not on absolute throughput.

Run with::

    python benchmarks/fleet_sharded_baseline.py          # full baseline, writes JSON
    python benchmarks/fleet_sharded_baseline.py --quick  # quick config only, no write
    python benchmarks/fleet_sharded_baseline.py --quick --check
        # measure the quick config and fail (exit 1) if the 2-shard
        # speedup-vs-single ratio regressed more than 30% against the
        # committed BENCH_fleet_sharded.json
    python benchmarks/fleet_sharded_baseline.py --quick --json-out out.json
        # also dump the measured numbers (CI uploads these as artifacts)
"""

from __future__ import annotations

import json
import os
import sys
import time

from _common import environment_block, make_parser, ratio_gate, write_json
from repro.scenarios.shard import ShardedFleetRun, partition_scenario
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.rng import RandomStreams

#: The reference sharded fleet: the revocation storm spread evenly across
#: the four K80 regions (job shape, queueing, pool-per-job ratio, and
#: epoch hour all match ``revocation_storm``; only the placement spreads).
REFERENCE = {"jobs": 64, "total_steps": 60_000, "workers_per_job": 3,
             "pool_slots_per_job": 4, "seed": 0,
             "regions": ("us-east1", "us-central1", "us-west1",
                         "europe-west1")}

#: Quick variant used by the CI smoke gate.
QUICK_STEPS = 2_000

#: Shard counts measured against the single-process run.
SHARD_COUNTS = (2, 4)

#: Allowed fractional speedup-ratio regression before ``--check`` fails.
REGRESSION_TOLERANCE = 0.30

#: Timing repetitions (the best run is recorded, damping scheduler noise).
REPETITIONS = 2

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_fleet_sharded.json")


def sharded_storm(jobs: int, total_steps: int) -> ScenarioSpec:
    """The revocation storm spread across the four K80 regions."""
    regions = REFERENCE["regions"]
    specs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=total_steps,
                workers=(("k80", regions[index % len(regions)]),)
                * REFERENCE["workers_per_job"],
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(jobs))
    per_region = REFERENCE["pool_slots_per_job"] * jobs // len(regions)
    return ScenarioSpec(
        name=f"sharded_storm_x{jobs}",
        description=f"revocation storm spread across {len(regions)} regions",
        jobs=specs,
        pool_capacity={("k80", region): per_region for region in regions},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5)


def _run_sharded(scenario: ScenarioSpec, shards: int):
    run = ShardedFleetRun(scenario, RandomStreams(REFERENCE["seed"]),
                          shards=shards)
    started = time.perf_counter()
    payload = run.run()
    wall = time.perf_counter() - started
    return payload, wall, run.events_processed


def _measure(scenario: ScenarioSpec, shards: int):
    best_wall, payload, events = float("inf"), None, 0
    for _ in range(REPETITIONS):
        payload, wall, events = _run_sharded(scenario, shards)
        best_wall = min(best_wall, wall)
    return {
        "wall_seconds": round(best_wall, 3),
        "events_processed": events,
        "events_per_sec": round(events / best_wall, 1),
    }, payload


def _measure_fleet(total_steps: int) -> dict:
    """Measure single-process vs sharded and verify payload identity."""
    scenario = sharded_storm(REFERENCE["jobs"], total_steps)
    groups = partition_scenario(scenario, max(SHARD_COUNTS))
    single, payload_single = _measure(scenario, shards=1)
    sharded = {}
    for shards in SHARD_COUNTS:
        measured, payload = _measure(scenario, shards=shards)
        assert payload == payload_single, \
            f"{shards}-shard payload diverged from the single-process run"
        measured["speedup_vs_single"] = round(
            single["wall_seconds"] / measured["wall_seconds"], 2)
        sharded[f"shards_{shards}"] = measured
    return {
        "total_steps_per_job": total_steps,
        "components": len(groups),
        "single_process": single,
        **sharded,
        "bit_identical_payloads": {f"shards_{count}": True
                                   for count in SHARD_COUNTS},
        "fleet": {
            "jobs": payload_single["jobs_total"],
            "completed": payload_single["jobs_completed"],
            "stalled": payload_single["jobs_stalled"],
            "revocations": payload_single["revocations"],
            "replacements_admitted":
                payload_single["replacements_admitted"],
            "makespan_hours": round(
                payload_single["makespan_seconds"] / 3600.0, 3),
        },
    }


def main(argv=None) -> int:
    parser = make_parser(
        __doc__, output=OUTPUT,
        check_help="compare the quick 2-shard speedup-vs-single "
                   "ratio against a committed baseline (default "
                   "benchmarks/BENCH_fleet_sharded.json) and exit "
                   "non-zero on a >30%% regression")
    args = parser.parse_args(argv)

    quick = _measure_fleet(QUICK_STEPS)
    print(json.dumps({"quick": quick}, indent=2))
    measured = {"quick": quick}
    status = 0
    if args.check is not None:
        status = ratio_gate(
            args.check, quick,
            ratio_path=("shards_2", "speedup_vs_single"),
            label="2-shard speedup over single-process",
            tolerance=REGRESSION_TOLERANCE,
            informative_path=("shards_2", "events_per_sec"),
            informative_label="2-shard events/sec")
    elif not args.quick:
        full = _measure_fleet(REFERENCE["total_steps"])
        measured["full"] = full
        baseline = {
            "reference_fleet": REFERENCE,
            "full": full,
            "quick": quick,
            "environment": environment_block(),
            "note": ("events_per_sec counts processed fleet events summed "
                     "across shards for one 64-job four-region storm.  "
                     "Tracked contracts: sharded payloads stay bit-identical "
                     "to the single-process run at every shard count, and "
                     "the 2-shard speedup ratio stays within 30% of this "
                     "baseline on a comparable host.  Speedup tracks "
                     "usable_cpus: a single-CPU host records sub-1x (the "
                     "draw-service round-trips are pure overhead without "
                     "parallel cores); the multi-core target is near-linear "
                     "scaling, >= 10x at 16 shards on a 16-core host for "
                     "draw-sparse fleets.  Regenerate with `python "
                     "benchmarks/fleet_sharded_baseline.py` on the same "
                     "host class when the shard driver, draw service, or "
                     "fleet loop changes."),
        }
        print(json.dumps({"full": full}, indent=2))
        print()
        write_json(OUTPUT, baseline)
    if args.json_out:
        write_json(args.json_out, measured)
    return status


if __name__ == "__main__":
    sys.exit(main())
