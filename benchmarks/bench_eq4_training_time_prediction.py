"""Section VI-A / Eq. (4)-(5): end-to-end training time prediction.

Builds the full model stack the paper composes — per-GPU step-time models,
a checkpoint-time model, and the empirical revocation CDFs — then predicts
the end-to-end time of a ResNet-32 training run and compares it against a
simulated run of the same workload (the paper reports 0.8% error for its
64K-step example).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cloud.revocation import RevocationModel
from repro.cmdare.experiment import run_training_experiment
from repro.modeling.checkpoint_predictor import TABLE4_MODEL_SPECS, CheckpointTimePredictor
from repro.modeling.cost import ClusterCostModel
from repro.modeling.speed_predictor import (
    ClusterSpeedPredictor,
    StepTimeModelSpec,
    StepTimePredictor,
)
from repro.modeling.training_time import TrainingTimeEstimator
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob


def test_eq4_training_time_prediction(benchmark, catalog, full_speed_campaign,
                                      checkpoint_campaign, revocation_campaign):
    measurements = full_speed_campaign.measurements()
    per_gpu = {gpu: StepTimePredictor(
        StepTimeModelSpec(f"Univariate, {gpu}", "cm", "linear", gpu)).fit(measurements)
        for gpu in ("k80", "p100")}
    cluster_predictor = ClusterSpeedPredictor(per_gpu_predictors=per_gpu)
    checkpoint_predictor = CheckpointTimePredictor(TABLE4_MODEL_SPECS[0]).fit(
        checkpoint_campaign.measurements())
    revocation_estimator = revocation_campaign.to_estimator(
        fallback_model=RevocationModel())
    estimator = TrainingTimeEstimator(cluster_predictor, checkpoint_predictor,
                                      revocation_estimator)

    profile = catalog.profile("resnet_32")
    # A scaled-down version of the paper's Nw=64K / Ic=4K example (the ratio
    # of checkpoints to steps is preserved).
    job = TrainingJob(profile=profile, total_steps=16_000,
                      checkpoint_interval_steps=1000)
    cluster = ClusterSpec.from_counts(k80=2, transient=False)

    prediction = benchmark.pedantic(lambda: estimator.predict(job, cluster),
                                    rounds=1, iterations=1)
    measured = run_training_experiment(cluster, job, seed=21, with_controller=False)
    error = estimator.prediction_error(prediction.total_seconds,
                                       measured.duration_seconds)

    rows = [
        ["predicted cluster speed (steps/s)", prediction.cluster_speed],
        ["compute term (s)", prediction.compute_seconds],
        ["checkpoint term (s)", prediction.checkpoint_seconds],
        ["revocation term (s)", prediction.revocation_seconds],
        ["predicted total (s)", prediction.total_seconds],
        ["measured total (s)", measured.duration_seconds],
        ["relative error", error],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Eq. (4) reproduction: ResNet-32 on 2 x K80 (on-demand)"))

    # The paper reports 0.8% prediction error; our simulated substrate lands
    # within a few percent.
    assert error < 0.06

    # Transient variant: the expected-revocation term is active and the cost
    # extension shows the transient discount.
    transient_cluster = ClusterSpec.from_counts(k80=2, region_name="us-east1")
    transient_prediction = estimator.predict(job, transient_cluster)
    assert transient_prediction.expected_revocations > 0
    assert transient_prediction.total_seconds > prediction.total_seconds
    estimate = ClusterCostModel().estimate(transient_cluster, transient_prediction)
    print(f"expected revocations: {transient_prediction.expected_revocations:.2f}, "
          f"transient cost ${estimate.transient_cost_usd:.2f} vs on-demand "
          f"${estimate.on_demand_cost_usd:.2f} ({estimate.savings_fraction * 100:.0f}% saved)")
    assert estimate.savings_fraction > 0.4
