"""Fig. 10: worker replacement overhead, cold start vs. warm start.

Regenerates the per-model replacement overheads and checks the paper's
observations: cold starts cost far more than warm starts (~75.6 s vs
~14.8 s for ResNet-15) and both grow with model size (Shake-Shake Big adds
roughly 15 seconds over ResNet-15).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.measurement.replacement_campaign import run_replacement_overhead_campaign
from repro.workloads.catalog import NAMED_MODELS


def test_fig10_replacement_overhead(benchmark, catalog, sweep_workers,
                                    sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: run_replacement_overhead_campaign(repetitions=10, seed=18,
                                                  catalog=catalog,
                                                  workers=sweep_workers,
                                                  cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    rows = []
    for model in NAMED_MODELS:
        cold = result.cell(model, cold_start=True)
        warm = result.cell(model, cold_start=False)
        rows.append([model, f"{cold.mean_seconds:.1f} +- {cold.std_seconds:.1f}",
                     f"{warm.mean_seconds:.1f} +- {warm.std_seconds:.1f}"])
    print()
    print(format_table(["model", "cold start (s)", "warm start (s)"], rows,
                       title="Fig. 10 reproduction: worker replacement overhead"))

    cold_r15 = result.cell("resnet_15", True).mean_seconds
    warm_r15 = result.cell("resnet_15", False).mean_seconds
    # Paper: ~75.6 s cold vs ~14.8 s warm for ResNet-15.
    assert 60.0 < cold_r15 < 95.0
    assert 10.0 < warm_r15 < 20.0
    assert cold_r15 > 3.5 * warm_r15
    # Overheads grow with model size for both cold and warm starts.
    for cold_start in (True, False):
        values = [result.cell(model, cold_start).mean_seconds for model in NAMED_MODELS]
        assert values == sorted(values) or values[-1] > values[0]
    cold_big = result.cell("shake_shake_big", True).mean_seconds
    print(f"Shake-Shake Big adds {cold_big - cold_r15:.1f}s over ResNet-15 (cold)")
    assert 8.0 < cold_big - cold_r15 < 30.0
