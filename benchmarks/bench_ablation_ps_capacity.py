"""Ablation: the parameter-server capacity calibration.

DESIGN.md calls out two empirical calibration choices behind the cluster
model: the soft-minimum sharpness between worker demand and PS capacity,
and the sub-linear capacity scaling with the PS count.  This ablation
sweeps both and shows that the chosen values are the ones that reproduce
the paper's observations (Table III's gradual per-worker slowdown and
Fig. 12's ~70% two-PS improvement), while the extreme alternatives do not.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.perf.calibration import PS_CAPACITY_ANCHORS, PS_SOFTMIN_SHARPNESS
from repro.perf.ps_capacity import PSCapacityModel, effective_cluster_speed
from repro.perf.step_time import StepTimeModel


def test_ablation_ps_capacity_calibration(benchmark, catalog):
    profile = catalog.profile("resnet_32")
    step_model = StepTimeModel()
    p100_speed = step_model.mean_speed(profile.gflops, "p100")

    def sweep():
        rows = []
        for sharpness in (2.0, PS_SOFTMIN_SHARPNESS, 64.0):
            capacity = PSCapacityModel().capacity(profile.parameter_bytes, 1)
            four = effective_cluster_speed(4 * p100_speed, capacity, sharpness)
            eight = effective_cluster_speed(8 * p100_speed, capacity, sharpness)
            rows.append((sharpness,
                         (4 * p100_speed / four - 1.0) * 100.0,
                         (8 * p100_speed / eight - 1.0) * 100.0))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["soft-min sharpness", "4xP100 per-worker slowdown (%)",
         "8xP100 per-worker slowdown (%)"],
        [[f"{s:.0f}", f"{a:.1f}", f"{b:.1f}"] for s, a, b in rows],
        title="Ablation: soft-min sharpness (ResNet-32, 1 PS)"))

    by_sharpness = {s: (a, b) for s, a, b in rows}
    chosen_four, chosen_eight = by_sharpness[PS_SOFTMIN_SHARPNESS]
    # Table III: a 4-P100 cluster runs ~7% slower per worker, an 8-P100
    # cluster is roughly 2x slower.  The chosen sharpness reproduces that.
    assert 2.0 < chosen_four < 20.0
    assert 70.0 < chosen_eight < 130.0
    # A very soft knee (sharpness 2) slows even lightly-loaded clusters far
    # too much, while a near-hard min (sharpness 64) under-predicts the
    # early-warning slowdown the paper measures at four workers; the chosen
    # value sits between the two extremes.
    soft_four, _ = by_sharpness[2.0]
    hard_four, _ = by_sharpness[64.0]
    assert soft_four > 2.0 * chosen_four
    assert hard_four < chosen_four

    # PS-count scaling: the calibrated exponent reproduces the paper's "up to
    # 70.6%" improvement; linear scaling would overshoot it.
    model = PSCapacityModel()
    speeds = [p100_speed] * 8
    one_ps = model.cluster_speed(speeds, profile.parameter_bytes, 1)
    two_ps = model.cluster_speed(speeds, profile.parameter_bytes, 2)
    linear_two_ps = effective_cluster_speed(
        8 * p100_speed, 2 * model.capacity(profile.parameter_bytes, 1))
    calibrated_gain = two_ps / one_ps - 1.0
    linear_gain = linear_two_ps / one_ps - 1.0
    print(f"two-PS improvement: calibrated {calibrated_gain * 100:.1f}% "
          f"vs linear scaling {linear_gain * 100:.1f}% (paper: up to 70.6%)")
    assert 0.5 < calibrated_gain < 0.9
    assert linear_gain > calibrated_gain
    assert len(PS_CAPACITY_ANCHORS) == 4
