"""Fleet scenarios: contention regimes the paper's single jobs never reach.

Runs the named fleet scenarios through the sweep engine and checks the
fleet-level contracts: the stable-region fleet absorbs its (rare)
revocations, the revocation storm sees pool-level revocations clustered at
the Fig. 9 peak hours, the capacity crunch reports a nonzero
replacement-denial rate while the storm (with headroom and queuing) denies
nothing, the warm-reuse fleet re-acquires reclaimed servers through the
Fig. 10 warm path, and a pool-size x queue-policy frontier sweep renders
the cost/makespan frontier table.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios import (
    fleet_frontier_table,
    fleet_hour_histogram,
    fleet_summary_table,
    frontier_rows,
    get_scenario,
    run_scenario,
)


def _run(name, catalog, sweep_workers, sweep_cache_dir, replicates=2, seed=0):
    return run_scenario(get_scenario(name), replicates=replicates, seed=seed,
                        workers=sweep_workers, cache_dir=sweep_cache_dir,
                        catalog=catalog)


def test_fleet_single_region_smoke(benchmark, catalog, sweep_workers,
                                   sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: _run("single_region_k80", catalog, sweep_workers,
                     sweep_cache_dir),
        rounds=1, iterations=1)
    print()
    print(fleet_summary_table(result))
    for payload in result.payloads():
        assert payload["jobs_completed"] == payload["jobs_total"]
        assert payload["replacements_denied"] == 0


def test_fleet_storm_vs_crunch_contention(benchmark, catalog, sweep_workers,
                                          sweep_cache_dir):
    storm, crunch = benchmark.pedantic(
        lambda: (_run("revocation_storm", catalog, sweep_workers,
                      sweep_cache_dir),
                 _run("capacity_crunch", catalog, sweep_workers,
                      sweep_cache_dir)),
        rounds=1, iterations=1)
    print()
    print(fleet_summary_table(storm))
    print()
    print(fleet_summary_table(crunch))

    storm_payloads = storm.payloads()
    crunch_payloads = crunch.payloads()
    # The storm fleet has headroom + queuing: revocations are absorbed.
    assert sum(p["revocations"] for p in storm_payloads) > 0
    assert sum(p["replacements_denied"] for p in storm_payloads) == 0
    # The crunched pool denies every replacement it is asked for.
    assert sum(p["replacements_denied"] for p in crunch_payloads) > 0
    assert max(p["replacement_denial_rate"] for p in crunch_payloads) > 0.0

    # Pool-level revocations inherit the Fig. 9 hour-of-day clustering:
    # the fleets launch at 9:30 AM europe-west1 local time, inside the K80
    # late-morning peak, so revocations concentrate in the 8-14h window.
    histogram = fleet_hour_histogram(storm_payloads + crunch_payloads)
    assert histogram.sum() > 0
    assert histogram[8:14].sum() >= histogram.sum() / 2
    assert int(np.argmax(histogram)) in range(8, 15)


def test_fleet_warm_reuse_takes_the_warm_path(benchmark, catalog,
                                              sweep_workers, sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: _run("warm_reuse", catalog, sweep_workers, sweep_cache_dir),
        rounds=1, iterations=1)
    print()
    print(fleet_summary_table(result))
    payloads = result.payloads()
    # The storm's queued replacements re-acquire reclaimed servers warm.
    assert sum(p["replacements_warm"] for p in payloads) > 0
    assert max(p["warm_reuse_rate"] for p in payloads) > 0.0
    assert all(0.0 <= p["warm_reuse_rate"] <= 1.0 for p in payloads)


def test_fleet_frontier_sweep_over_pool_and_policy(benchmark, catalog,
                                                   sweep_workers,
                                                   sweep_cache_dir):
    """A two-axis frontier over the crunch: more pool or queueing both
    change the cost/makespan trade-off, and the table flags the frontier."""
    result = benchmark.pedantic(
        lambda: run_scenario(get_scenario("capacity_crunch"), replicates=2,
                             seed=0, workers=sweep_workers,
                             cache_dir=sweep_cache_dir, catalog=catalog,
                             pool_sizes=(1.0, 1.5),
                             queue_policies=("deny", "queue")),
        rounds=1, iterations=1)
    print()
    print(fleet_frontier_table(result))
    headers, rows = frontier_rows(result)
    assert len(rows) == 4
    assert any(row[-1] == "*" for row in rows)
    # The denial-rate column is always a finite fraction, even for combos
    # whose fleets never requested a replacement.
    denial_column = headers.index("denial rate")
    assert all(0.0 <= row[denial_column] <= 1.0 for row in rows)
    # A strictly larger pool can only lower the pooled denial rate.
    by_combo = {(row[0], row[1]): row[denial_column] for row in rows}
    assert by_combo[(1.5, "deny")] <= by_combo[(1.0, "deny")]


def test_fleet_multi_region_heterogeneous(benchmark, catalog, sweep_workers,
                                          sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: _run("multi_region_hetero", catalog, sweep_workers,
                     sweep_cache_dir),
        rounds=1, iterations=1)
    print()
    print(fleet_summary_table(result))
    for payload in result.payloads():
        assert payload["jobs_completed"] == payload["jobs_total"]
        # Staggered arrivals: the last job starts 600 s in, so the fleet
        # makespan covers at least that delay plus its training time.
        assert payload["makespan_seconds"] > 600.0
        # The V100 job (auto-mitigation on) may add a parameter server;
        # never more than its max_extra_parameter_servers bound.
        assert 0 <= payload["ps_mitigations"] <= 4