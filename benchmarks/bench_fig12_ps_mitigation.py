"""Fig. 12: parameter-server bottleneck detection and mitigation.

Regenerates the one-PS vs two-PS scaling curves for the ResNet models and
checks the paper's observations: one-PS clusters plateau, a second PS
improves the saturated clusters by up to ~70%, and CM-DARE's detector flags
the bottleneck from the prediction/measurement gap.
"""

from __future__ import annotations

from repro.analysis.figures import FigureSeries
from repro.cmdare.bottleneck import BottleneckDetector
from repro.measurement.scaling_campaign import run_ps_mitigation_campaign
from repro.perf.step_time import StepTimeModel


def test_fig12_ps_bottleneck_mitigation(benchmark, catalog, sweep_workers,
                                        sweep_cache_dir):
    results = benchmark.pedantic(
        lambda: run_ps_mitigation_campaign(model_names=("resnet_15", "resnet_32"),
                                           worker_counts=tuple(range(1, 9)),
                                           steps=2000, seed=20, catalog=catalog,
                                           workers=sweep_workers,
                                           cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    print()
    improvements = {}
    for model in ("resnet_15", "resnet_32"):
        figure = FigureSeries(title=f"Fig. 12 ({model}): cluster speed, 1 PS vs 2 PS",
                              x_label="number of P100 workers", y_label="steps/second")
        figure.add_series("1 PS", results[1].series[model])
        figure.add_series("2 PS", results[2].series[model])
        print(figure.to_text())
        one_ps = dict(results[1].series[model])
        two_ps = dict(results[2].series[model])
        improvements[model] = max(two_ps[n] / one_ps[n] - 1.0 for n in one_ps)
        print(f"{model}: max improvement from a second PS = "
              f"{improvements[model] * 100:.1f}%")

    # ResNet-32 saturates hard with one PS and improves by up to ~70% with two.
    assert 0.4 < improvements["resnet_32"] < 0.9
    # ResNet-15 is far from the bottleneck at small sizes, so small clusters
    # are unaffected by the second PS.
    one_ps_r15 = dict(results[1].series["resnet_15"])
    two_ps_r15 = dict(results[2].series["resnet_15"])
    assert abs(two_ps_r15[2] / one_ps_r15[2] - 1.0) < 0.1

    # The CM-DARE detector flags the saturated configuration: the predicted
    # speed (sum of per-worker speeds) exceeds the measured one by more than
    # the 6.7% threshold after the warm-up period.
    step_model = StepTimeModel()
    profile = catalog.profile("resnet_32")
    predicted = 8 * step_model.mean_speed(profile.gflops, "p100")
    measured = dict(results[1].series["resnet_32"])[8]
    report = BottleneckDetector().check(predicted, measured, elapsed_seconds=60.0)
    print(f"detector: predicted {predicted:.1f}, measured {measured:.1f}, "
          f"deviation {report.deviation * 100:.1f}% -> {report.bottleneck_detected}")
    assert report.bottleneck_detected
    # And it stays quiet for an unsaturated two-worker cluster.
    quiet = BottleneckDetector().check(
        2 * step_model.mean_speed(profile.gflops, "p100"),
        dict(results[1].series["resnet_32"])[2], elapsed_seconds=60.0)
    assert not quiet.bottleneck_detected
