"""Fig. 2: training-speed stability on a K80 across the four named models.

Regenerates the per-100-step speed series and checks the paper's
observation that training speed is stable after warm-up (coefficient of
variation at most ~0.02).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import FigureSeries, ascii_plot
from repro.measurement.speed_campaign import run_speed_stability_campaign
from repro.workloads.catalog import NAMED_MODELS


def test_fig2_speed_stability(benchmark, catalog, sweep_workers, sweep_cache_dir):
    series = benchmark.pedantic(
        lambda: run_speed_stability_campaign(gpu_name="k80", model_names=NAMED_MODELS,
                                             steps=2000, seed=12, catalog=catalog,
                                             workers=sweep_workers,
                                             cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    figure = FigureSeries(title="Fig. 2: training speed vs steps (K80)",
                          x_label="cluster step", y_label="steps/second")
    for model, points in series.items():
        figure.add_series(model, points)
    print()
    print(figure.to_text())
    print(ascii_plot(series["resnet_15"]))

    for model in NAMED_MODELS:
        post_warmup = np.array([speed for step, speed in series[model] if step > 100])
        cov = post_warmup.std(ddof=1) / post_warmup.mean()
        print(f"{model}: post-warm-up speed CoV = {cov:.4f}")
        # The paper reports a maximum coefficient of variation of 0.02.
        assert cov < 0.03, model
    # Ordering by model complexity is visible in the series.
    means = {model: np.mean([s for st, s in series[model] if st > 100])
             for model in NAMED_MODELS}
    assert (means["resnet_15"] > means["resnet_32"] > means["shake_shake_small"]
            > means["shake_shake_big"])
