"""Fig. 4: cluster training speed vs. the number of P100 workers.

Regenerates the scaling series for the four named models and checks the
paper's observations: ResNet-15 keeps scaling, ResNet-32 and Shake-Shake
Small plateau after ~4 workers (the parameter-server bottleneck), and
Shake-Shake Big does not benefit from more P100 workers.
"""

from __future__ import annotations

from repro.analysis.figures import FigureSeries, ascii_plot
from repro.measurement.scaling_campaign import run_cluster_scaling_campaign


def test_fig4_cluster_scaling(benchmark, catalog, sweep_workers, sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: run_cluster_scaling_campaign(worker_counts=tuple(range(1, 9)),
                                             steps=2000, seed=14, catalog=catalog,
                                             workers=sweep_workers,
                                             cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)

    figure = FigureSeries(title="Fig. 4: cluster speed vs #P100 workers",
                          x_label="number of P100 workers", y_label="steps/second")
    for model, series in result.series.items():
        figure.add_series(model, series)
    print()
    print(figure.to_text())
    print(ascii_plot(result.series["resnet_15"]))

    # ResNet-15 (least compute-intensive) shows the clearest upward trend.
    assert result.plateau_ratio("resnet_15") > 5.0
    # ResNet-32 and Shake-Shake Small plateau after about four workers.
    for model in ("resnet_32", "shake_shake_small"):
        series = dict(result.series[model])
        assert series[8] < 1.25 * series[4], model
        assert series[4] > 2.5 * series[1], model
    # Shake-Shake Big sees no meaningful improvement on P100.
    assert result.plateau_ratio("shake_shake_big") < 1.6
    # Speeds never decrease with more workers.
    for series in result.series.values():
        speeds = [speed for _count, speed in series]
        assert all(b >= 0.95 * a for a, b in zip(speeds, speeds[1:]))
