"""Record the sweep-engine performance baseline (``BENCH_sweeps.json``).

Times a representative 12-cell model × GPU speed grid through
:class:`repro.sweeps.SweepRunner` three ways — serial, 4 worker processes,
and a warm cache — verifies the three produce bit-identical payloads, and
writes the numbers to ``benchmarks/BENCH_sweeps.json`` so future PRs can
track sweep-engine performance.

Run with::

    python benchmarks/sweep_baseline.py
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from _common import environment_block, write_json
from repro.measurement.speed_campaign import build_speed_spec, speed_cell
from repro.sweeps import SweepRunner
from repro.workloads.catalog import NAMED_MODELS, default_catalog

#: Steps per cell; heavier than the bench default so per-cell compute
#: dominates process-pool setup on multicore hosts.
BASELINE_STEPS = 20_000

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "BENCH_sweeps.json")


def main() -> None:
    spec = build_speed_spec(model_names=NAMED_MODELS,
                            gpu_names=("k80", "p100", "v100"),
                            steps=BASELINE_STEPS)
    catalog = default_catalog()
    cache_dir = tempfile.mkdtemp(prefix="sweep-baseline-")
    try:
        started = time.perf_counter()
        serial = SweepRunner(workers=1, seed=1).run(spec, speed_cell,
                                                    context=catalog)
        serial_seconds = time.perf_counter() - started

        started = time.perf_counter()
        parallel = SweepRunner(workers=4, cache_dir=cache_dir, seed=1).run(
            spec, speed_cell, context=catalog)
        parallel_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = SweepRunner(workers=4, cache_dir=cache_dir, seed=1).run(
            spec, speed_cell, context=catalog)
        warm_seconds = time.perf_counter() - started

        identical = (serial.payloads() == parallel.payloads()
                     == warm.payloads())
        assert identical, "parallel/cached payloads diverged from serial"
        assert warm.cache_hits == len(spec), "warm run recomputed cells"
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    baseline = {
        "grid": {"sweep": spec.name, "cells": len(spec),
                 "axes": {name: len(values) for name, values in spec.axes.items()},
                 "steps_per_cell": BASELINE_STEPS},
        "serial_seconds": round(serial_seconds, 3),
        "parallel_4workers_seconds": round(parallel_seconds, 3),
        "warm_cache_seconds": round(warm_seconds, 3),
        "speedup_4workers": round(serial_seconds / parallel_seconds, 3),
        "bit_identical_serial_vs_parallel": identical,
        "warm_cache_hits": warm.cache_hits,
        "environment": environment_block(include_numpy=False),
        "note": ("Speedup tracks usable_cpus: on a single-CPU host the "
                 "4-worker run cannot beat serial wall-clock; the contract "
                 "tracked here is bit-identical payloads plus full warm-cache "
                 "reuse, and the serial/parallel timings give future PRs a "
                 "comparable engine-overhead baseline."),
    }
    print(json.dumps(baseline, indent=2))
    print()
    write_json(OUTPUT, baseline)


if __name__ == "__main__":
    main()
