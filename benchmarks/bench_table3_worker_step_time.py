"""Table III: per-worker step time across cluster sizes and heterogeneity.

Trains ResNet-32 on baseline, homogeneous (2/4/8 workers), and the
heterogeneous (2, 1, 1) clusters and reports the average step time of an
individual worker of each GPU type, mirroring Table III.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.measurement.scaling_campaign import run_worker_step_time_campaign


def test_table3_worker_step_time(benchmark, catalog, sweep_workers,
                                 sweep_cache_dir):
    result = benchmark.pedantic(
        lambda: run_worker_step_time_campaign(model_name="resnet_32", steps=2000,
                                              seed=13, catalog=catalog,
                                              workers=sweep_workers,
                                              cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)
    table = result.as_table()

    columns = ["baseline", "(2, 0, 0)", "(4, 0, 0)", "(8, 0, 0)", "(2, 1, 1)"]
    label_for = {
        "k80": {"baseline": "baseline", "2": "(2, 0, 0)", "4": "(4, 0, 0)",
                "8": "(8, 0, 0)"},
        "p100": {"baseline": "baseline", "2": "(0, 2, 0)", "4": "(0, 4, 0)",
                 "8": "(0, 8, 0)"},
        "v100": {"baseline": "baseline", "2": "(0, 0, 2)", "4": "(0, 0, 4)",
                 "8": "(0, 0, 8)"},
    }
    rows = []
    for gpu in ("k80", "p100", "v100"):
        row = [gpu]
        for column in columns:
            if column == "baseline":
                key = "baseline"
            elif column == "(2, 1, 1)":
                key = "(2, 1, 1)"
            else:
                size = column.strip("()").split(",")[0].strip()
                # Map the display column onto the per-GPU homogeneous label.
                size = column.replace("(", "").replace(")", "").replace(" ", "").split(",")
                size = str(max(int(s) for s in size))
                key = label_for[gpu][size]
            mean, std = table[gpu][key]
            row.append(f"{mean:.1f} +- {std:.1f}")
        rows.append(row)
    print()
    print(format_table(["GPU \\ cluster"] + columns, rows,
                       title="Table III reproduction (per-worker step time, ms, ResNet-32)"))

    k80 = table["k80"]
    p100 = table["p100"]
    v100 = table["v100"]
    # K80 workers are unaffected by cluster size (within a few percent).
    assert abs(k80["(8, 0, 0)"][0] - k80["baseline"][0]) / k80["baseline"][0] < 0.06
    # P100 saturates by eight workers and V100 already by four.
    assert p100["(0, 8, 0)"][0] > 1.6 * p100["baseline"][0]
    assert v100["(0, 0, 4)"][0] > 1.2 * v100["baseline"][0]
    assert v100["(0, 0, 8)"][0] > 1.6 * v100["baseline"][0]
    # Heterogeneous clusters do not slow individual workers down.
    for gpu in ("k80", "p100", "v100"):
        assert abs(table[gpu]["(2, 1, 1)"][0] - table[gpu]["baseline"][0]) \
            / table[gpu]["baseline"][0] < 0.08
