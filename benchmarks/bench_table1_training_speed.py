"""Table I: training speed of the simplest cluster configuration.

Regenerates the (GPU x model) training-speed table for one GPU worker plus
one parameter server and checks it against the values the paper reports.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.measurement.speed_campaign import run_speed_campaign
from repro.perf.calibration import PAPER_TABLE1_SPEEDS
from repro.workloads.catalog import NAMED_MODELS


def test_table1_training_speed(benchmark, catalog, named_speed_campaign,
                               sweep_workers, sweep_cache_dir):
    campaign = benchmark.pedantic(
        lambda: run_speed_campaign(model_names=NAMED_MODELS,
                                   gpu_names=("k80",), steps=1000, seed=11,
                                   catalog=catalog, workers=sweep_workers,
                                   cache_dir=sweep_cache_dir),
        rounds=1, iterations=1)
    # The benchmark call above times one GPU column; the full table comes
    # from the shared session campaign.
    table = named_speed_campaign.table1()

    report = ExperimentReport("Table I", "training speed (steps/s), 1 worker + 1 PS")
    rows = []
    for gpu in ("k80", "p100", "v100"):
        row = [gpu]
        for model in NAMED_MODELS:
            measured, std = table[gpu][model]
            paper, _paper_std = PAPER_TABLE1_SPEEDS[gpu][model]
            row.append(f"{measured:.2f} +- {std:.2f}")
            report.add(f"{gpu} {model}", measured, paper_value=paper, unit="steps/s")
        rows.append(row)
    print()
    print(format_table(["GPU"] + list(NAMED_MODELS), rows,
                       title="Table I reproduction (steps/second)"))
    print(report.to_text())

    # Shape checks: every measured cell within 10% of the paper and the
    # orderings (faster GPU, simpler model) preserved.
    assert report.worst_relative_error() < 0.10
    for model in NAMED_MODELS:
        assert table["k80"][model][0] < table["p100"][model][0] < table["v100"][model][0]
    assert campaign.table1()["k80"]["resnet_15"][0] > 8.0
