"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper.
The heavyweight measurement campaigns are shared through session-scoped
fixtures so that, e.g., the Table II bench reuses the Fig. 3 dataset
exactly the way the paper does.

Run with::

    pytest benchmarks/ --benchmark-only

Every campaign grid runs through :class:`repro.sweeps.SweepRunner`; two
environment variables control the sweep engine without changing results
(per-cell seeding is order- and worker-independent):

* ``REPRO_SWEEP_WORKERS`` — worker processes per sweep (default: serial);
* ``REPRO_SWEEP_CACHE`` — directory for the per-cell JSON result cache
  (default: no caching), letting repeated bench runs reuse cells.

Every bench prints the regenerated table/figure data (``-s`` shows it) and
asserts the qualitative shape the paper reports.
"""

from __future__ import annotations

import os

import pytest

from repro.measurement.checkpoint_campaign import run_checkpoint_campaign
from repro.measurement.revocation_campaign import run_revocation_campaign
from repro.measurement.speed_campaign import run_speed_campaign
from repro.sweeps.runner import default_worker_count, parse_workers
from repro.workloads.catalog import NAMED_MODELS, default_catalog

#: Steps per speed measurement used by the benches.  The paper uses 4000;
#: 2000 keeps the full harness under a few minutes while leaving hundreds of
#: post-warm-up windows per measurement.
BENCH_MEASUREMENT_STEPS = 2000


@pytest.fixture(scope="session")
def sweep_workers():
    """Sweep workers from ``REPRO_SWEEP_WORKERS``: a count, ``auto``, or
    unset/empty for the serial default."""
    raw = os.environ.get("REPRO_SWEEP_WORKERS", "")
    try:
        value = parse_workers(raw)
    except ValueError:
        raise pytest.UsageError(
            "REPRO_SWEEP_WORKERS must be a non-negative integer or 'auto', "
            f"got {raw!r}")
    if value == "auto":
        return default_worker_count()
    return value if value > 1 else None


@pytest.fixture(scope="session")
def sweep_cache_dir():
    """Sweep result cache directory, from ``REPRO_SWEEP_CACHE`` (off default)."""
    return os.environ.get("REPRO_SWEEP_CACHE") or None


@pytest.fixture(scope="session")
def catalog():
    """The shared twenty-model catalog."""
    return default_catalog()


@pytest.fixture(scope="session")
def named_speed_campaign(catalog, sweep_workers, sweep_cache_dir):
    """Single-worker speed measurements for the four named models, 3 GPUs."""
    return run_speed_campaign(model_names=NAMED_MODELS,
                              gpu_names=("k80", "p100", "v100"),
                              steps=BENCH_MEASUREMENT_STEPS, seed=1, catalog=catalog,
                              workers=sweep_workers, cache_dir=sweep_cache_dir)


@pytest.fixture(scope="session")
def full_speed_campaign(catalog, sweep_workers, sweep_cache_dir):
    """Single-worker speed measurements for all twenty models on K80 + P100.

    This is the dataset behind Fig. 3 and the training data for the Table II
    regression models.
    """
    return run_speed_campaign(model_names=None, gpu_names=("k80", "p100"),
                              steps=BENCH_MEASUREMENT_STEPS, seed=2, catalog=catalog,
                              workers=sweep_workers, cache_dir=sweep_cache_dir)


@pytest.fixture(scope="session")
def checkpoint_campaign(catalog, sweep_workers, sweep_cache_dir):
    """Checkpoint measurements for all twenty models (Fig. 5 / Table IV)."""
    return run_checkpoint_campaign(seed=3, catalog=catalog,
                                   workers=sweep_workers,
                                   cache_dir=sweep_cache_dir)


@pytest.fixture(scope="session")
def revocation_campaign(sweep_workers, sweep_cache_dir):
    """The twelve-day revocation campaign (Table V / Figs. 8-9)."""
    return run_revocation_campaign(seed=4, workers=sweep_workers,
                                   cache_dir=sweep_cache_dir)
