"""Packaging for the CM-DARE reproduction library.

Metadata lives here (rather than in ``pyproject.toml``'s ``[project]``
table) so legacy editable installs — ``pip install -e .`` without the
``wheel`` package — keep working in offline environments.  The package
uses a ``src/`` layout; installing it makes ``import repro`` work without
a manual ``PYTHONPATH`` and provides the ``repro-sweeps``,
``repro-scenarios``, ``repro-serve``, and ``repro-telemetry`` console
scripts.
"""

import os
import re

from setuptools import find_packages, setup


def _read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "_version.py"), encoding="utf-8") as handle:
        match = re.search(r'__version__ = "([^"]+)"', handle.read())
    if match is None:
        raise RuntimeError("cannot determine package version")
    return match.group(1)


setup(
    name="repro-cmdare",
    version=_read_version(),
    description=("Reproduction of 'Characterizing and Modeling Distributed "
                 "Training with Transient Cloud GPU Servers' (ICDCS 2020)"),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro-sweeps = repro.sweeps.cli:main",
            "repro-scenarios = repro.scenarios.cli:main",
            "repro-serve = repro.serve.cli:main",
            "repro-telemetry = repro.telemetry.cli:main",
        ],
    },
)
