"""Tests for the analysis helpers (stats, tables, figures, reports)."""

import numpy as np
import pytest

from repro.analysis.figures import FigureSeries, ascii_plot
from repro.analysis.report import ExperimentReport
from repro.analysis.stats import (
    coefficient_of_variation,
    describe,
    empirical_cdf,
    mean_and_std,
    relative_difference,
)
from repro.analysis.tables import format_table
from repro.errors import DataError


def test_mean_and_std():
    mean, std = mean_and_std([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert std == pytest.approx(1.0)
    assert mean_and_std([5.0]) == (5.0, 0.0)
    with pytest.raises(DataError):
        mean_and_std([])


def test_coefficient_of_variation():
    assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0
    with pytest.raises(DataError):
        coefficient_of_variation([0.0, 0.0])


def test_empirical_cdf_matches_per_point_loop():
    # Value-identity pin for the sort+searchsorted rewrite: it must equal
    # the original per-grid-point counting loop on every point, including
    # ties, repeated observations, and grid points outside the data range.
    rng = np.random.default_rng(5)
    values = np.round(rng.gamma(2.0, 3.0, size=257), 1)  # forces ties
    grid = np.concatenate([[-1.0, 0.0], np.sort(rng.choice(values, 40)),
                           [values.max(), values.max() + 5.0]])
    for population in (0, 1000):
        denominator = max(population, values.size)
        reference = np.array([np.count_nonzero(values <= point) / denominator
                              for point in grid])
        fast = empirical_cdf(values, grid, population=population)
        assert fast.tolist() == reference.tolist()


def test_empirical_cdf_monotone_and_censored():
    values = [1.0, 2.0, 5.0]
    grid = [0.5, 1.0, 3.0, 10.0]
    cdf = empirical_cdf(values, grid, population=10)
    assert list(cdf) == [0.0, 0.1, 0.2, 0.3]
    plain = empirical_cdf(values, grid)
    assert plain[-1] == pytest.approx(1.0)
    with pytest.raises(DataError):
        empirical_cdf([], [1.0])


def test_describe_keys():
    summary = describe([1.0, 2.0, 3.0, 4.0])
    assert summary["count"] == 4
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["p50"] == pytest.approx(2.5)
    # The single two-quantile percentile call equals separate calls.
    values = np.random.default_rng(9).normal(size=333)
    summary = describe(values)
    assert summary["p50"] == np.percentile(values, 50.0)
    assert summary["p95"] == np.percentile(values, 95.0)


def test_relative_difference():
    assert relative_difference(11.0, 10.0) == pytest.approx(0.1)
    with pytest.raises(DataError):
        relative_difference(1.0, 0.0)


def test_format_table_renders_and_validates():
    text = format_table(["model", "speed"], [["resnet_15", 9.46], ["resnet_32", 4.56]],
                        title="Table I")
    assert "Table I" in text
    assert "resnet_15" in text
    assert "9.460" in text
    lines = text.splitlines()
    assert len(lines) == 5
    with pytest.raises(DataError):
        format_table([], [])
    with pytest.raises(DataError):
        format_table(["a", "b"], [["only-one"]])


def test_figure_series_round_trip():
    figure = FigureSeries(title="Fig. 4", x_label="workers", y_label="steps/s")
    figure.add_series("resnet_15", [(1, 21.0), (2, 42.0)])
    figure.add_series("resnet_32", [(1, 12.0), (2, 24.0)])
    assert figure.names() == ["resnet_15", "resnet_32"]
    rows = figure.as_rows()
    assert ("resnet_15", 1.0, 21.0) in rows
    text = figure.to_text()
    assert "Fig. 4" in text and "resnet_32" in text


def test_ascii_plot_shapes_output():
    points = [(x, x * x) for x in range(10)]
    plot = ascii_plot(points, width=30, height=8)
    lines = plot.splitlines()
    assert len(lines) == 9
    assert any("*" in line for line in lines)
    with pytest.raises(DataError):
        ascii_plot([])
    with pytest.raises(DataError):
        ascii_plot(points, width=5, height=2)


def test_experiment_report_comparisons():
    report = ExperimentReport(experiment_id="table1", description="training speed")
    report.add("K80 resnet_32", measured_value=4.48, paper_value=4.56, unit="steps/s")
    report.add("no-paper-value", measured_value=1.0)
    report.observe("ordering preserved")
    assert report.rows[0].relative_error == pytest.approx((4.48 - 4.56) / 4.56)
    assert report.rows[1].relative_error is None
    assert report.worst_relative_error() < 0.05
    text = report.to_text()
    assert "table1" in text and "ordering preserved" in text


def test_experiment_report_requires_paper_rows_for_worst_error():
    report = ExperimentReport(experiment_id="x", description="y")
    report.add("measured-only", measured_value=1.0)
    with pytest.raises(DataError):
        report.worst_relative_error()
