"""Tests for checkpoint file sizing and dataset specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.checkpoints import (
    BYTES_PER_PARAM,
    OPTIMIZER_SLOTS_PER_PARAM,
    checkpoint_files_for,
)
from repro.workloads.datasets import CIFAR10, IMAGENET, DatasetSpec
from repro.workloads.catalog import default_catalog


def test_data_file_includes_optimizer_slots():
    graph = default_catalog().graph("resnet_15")
    files = checkpoint_files_for(graph)
    expected = graph.params * BYTES_PER_PARAM * (1 + OPTIMIZER_SLOTS_PER_PARAM)
    assert files.data_bytes == expected


def test_plain_sgd_checkpoint_is_smaller():
    graph = default_catalog().graph("resnet_15")
    adam = checkpoint_files_for(graph, optimizer_slots=2)
    sgd = checkpoint_files_for(graph, optimizer_slots=0)
    assert sgd.data_bytes < adam.data_bytes
    assert sgd.index_bytes < adam.index_bytes


def test_index_and_meta_scale_with_tensors():
    catalog = default_catalog()
    small = catalog.profile("resnet_15").checkpoint
    large = catalog.profile("resnet_32").checkpoint
    assert large.index_bytes > small.index_bytes
    assert large.meta_bytes > small.meta_bytes


def test_total_is_sum_of_files():
    files = default_catalog().profile("shake_shake_small").checkpoint
    assert files.total_bytes == files.data_bytes + files.index_bytes + files.meta_bytes
    assert files.total_mb == pytest.approx(files.total_bytes / (1024 * 1024))


def test_data_file_dominates_for_large_models():
    files = default_catalog().profile("shake_shake_big").checkpoint
    assert files.data_bytes > 10 * (files.index_bytes + files.meta_bytes)


def test_checkpoint_sizes_monotone_in_params():
    catalog = default_catalog()
    profiles = sorted(catalog.profiles(), key=lambda p: p.params)
    sizes = [p.checkpoint.data_bytes for p in profiles]
    assert sizes == sorted(sizes)


def test_cifar10_spec_matches_the_paper():
    assert CIFAR10.image_shape == (32, 32, 3)
    assert CIFAR10.total_examples == 60_000
    assert CIFAR10.num_classes == 10


def test_steps_per_epoch():
    assert CIFAR10.steps_per_epoch(batch_size=128) == 50_000 // 128
    with pytest.raises(ConfigurationError):
        CIFAR10.steps_per_epoch(batch_size=0)


def test_examples_for_steps():
    assert CIFAR10.examples_for_steps(100, 128) == 12_800
    with pytest.raises(ConfigurationError):
        CIFAR10.examples_for_steps(-1, 128)


def test_imagenet_is_much_larger_than_cifar():
    assert IMAGENET.size_bytes > 100 * CIFAR10.size_bytes


def test_invalid_dataset_rejected():
    with pytest.raises(ConfigurationError):
        DatasetSpec(name="bad", image_shape=(1, 1, 1), num_train_examples=0,
                    num_eval_examples=0, num_classes=1, size_bytes=1)
