"""Tests for the columnar step-record storage and vectorized trace stats.

``StepRecordArray`` replaced the ``List[StepRecord]`` the trace used to
hold; these tests cover the list-compatible surface and pin the vectorized
statistics (``cluster_speed``, ``speed_series``, ``worker_step_times``)
against straight ports of the original record-by-record implementations.
"""

import numpy as np
import pytest

from repro.errors import DataError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.training.trace import StepRecord, StepRecordArray, TrainingTrace


def _record(i, worker="w0", steps=10):
    return StepRecord(worker_id=worker, start_time=float(i), end_time=i + 1.0,
                      steps=steps, cluster_step=(i + 1) * steps,
                      worker_step=(i + 1) * steps)


# ---------------------------------------------------------------------------
# List-compatible container surface.
# ---------------------------------------------------------------------------
def test_append_and_materialize_roundtrip():
    records = StepRecordArray()
    originals = [_record(i, worker=f"w{i % 3}") for i in range(10)]
    for record in originals:
        records.append(record)
    assert len(records) == 10
    assert list(records) == originals
    assert records[3] == originals[3]
    assert records[-1] == originals[-1]
    assert records[2:5] == originals[2:5]
    assert records == originals          # list equality
    assert records == StepRecordArray(originals)  # columnar equality
    with pytest.raises(IndexError):
        records[10]


def test_growth_beyond_initial_capacity():
    records = StepRecordArray()
    originals = [_record(i) for i in range(300)]
    for record in originals:
        records.append(record)
    assert len(records) == 300
    assert list(records) == originals
    assert records.nbytes >= 300 * 6 * 8


def test_worker_interning_first_appearance_order():
    records = StepRecordArray()
    for worker in ("w2", "w0", "w2", "w1", "w0"):
        records.append(_record(len(records), worker=worker))
    assert records.worker_names == ("w2", "w0", "w1")
    assert records.worker_index("w1") == 2
    assert records.worker_index("missing") is None
    assert records.worker_name(0) == "w2"
    assert [records.worker_name(i) for i in records.worker_indices] == \
        ["w2", "w0", "w2", "w1", "w0"]


def test_extend_rows_bulk_append_matches_scalar_appends():
    bulk = StepRecordArray()
    scalar = StepRecordArray()
    workers = ["a", "b", "a", "c"]
    starts = [0.0, 0.5, 1.0, 1.5]
    ends = [1.0, 1.5, 2.0, 2.5]
    steps = [10, 10, -5, 10]
    clusters = [10, 20, 15, 25]
    worker_steps = [10, 10, 0, 10]
    bulk.extend_rows(workers, starts, ends, steps, clusters, worker_steps)
    for row in zip(workers, starts, ends, steps, clusters, worker_steps):
        scalar.append_row(*row)
    assert bulk == scalar
    with pytest.raises(DataError):
        bulk.extend_rows(["x"], [0.0], [1.0], [1], [1], [1, 2])


# ---------------------------------------------------------------------------
# Reference (pre-columnar) statistic implementations.
# ---------------------------------------------------------------------------
def _reference_cluster_speed(trace, warmup_steps=100):
    records = [r for r in trace.step_records if r.cluster_step > warmup_steps]
    steps = sum(record.steps for record in records)
    start = min(record.start_time for record in records)
    end = max(record.end_time for record in records)
    return steps / (end - start)


def _reference_speed_series(trace, window_steps=100):
    records = sorted(trace.step_records, key=lambda r: r.end_time)
    series = []
    window_start_time = trace.start_time
    window_steps_done = 0
    next_boundary = window_steps
    for record in records:
        window_steps_done += record.steps
        if record.cluster_step >= next_boundary:
            elapsed = record.end_time - window_start_time
            if elapsed > 0:
                series.append((record.cluster_step, window_steps_done / elapsed))
            window_start_time = record.end_time
            window_steps_done = 0
            next_boundary = record.cluster_step + window_steps
    return series


def _reference_worker_step_times(trace, worker_id, warmup_steps=100):
    return np.asarray([record.step_time for record in trace.step_records
                       if record.worker_id == worker_id
                       and record.worker_step > warmup_steps])


@pytest.fixture(scope="module")
def real_trace(catalog):
    """A real multi-worker trace with checkpoints."""
    profile = catalog.profile("resnet_32")
    job = TrainingJob(profile=profile, total_steps=3000,
                      checkpoint_interval_steps=800)
    session = TrainingSession(Simulator(), ClusterSpec.from_counts(k80=3), job,
                              streams=RandomStreams(21))
    return session.run_to_completion()


def test_cluster_speed_matches_reference(real_trace):
    assert real_trace.cluster_speed() == _reference_cluster_speed(real_trace)


@pytest.mark.parametrize("window", [50, 100, 237])
def test_speed_series_matches_reference(real_trace, window):
    assert real_trace.speed_series(window) == _reference_speed_series(
        real_trace, window)


def test_worker_step_times_match_reference(real_trace):
    for worker_id in real_trace.worker_ids():
        assert np.array_equal(real_trace.worker_step_times(worker_id),
                              _reference_worker_step_times(real_trace, worker_id))


def test_total_steps_and_duration_match_reference(real_trace):
    assert real_trace.total_steps == sum(r.steps for r in real_trace.step_records)
    running = TrainingTrace(model_name="m", cluster_description="c")
    for record in real_trace.step_records:
        running.step_records.append(record)
    assert running.duration == (max(r.end_time for r in real_trace.step_records)
                                - running.start_time)


def test_speed_series_non_monotone_restart_trace():
    """Session-restart rows make cluster_step non-monotone; the windowing
    must fall back to the original scan and still match the reference."""
    trace = TrainingTrace(model_name="m", cluster_description="c")
    t = 0.0
    cluster = 0
    for i in range(40):
        cluster += 10
        trace.step_records.append(StepRecord(
            worker_id="w0", start_time=t, end_time=t + 1.0, steps=10,
            cluster_step=cluster, worker_step=cluster))
        t += 1.0
        if i == 19:  # mid-run restart discarding 150 steps
            cluster -= 150
            trace.step_records.append(StepRecord(
                worker_id="session-restart", start_time=t, end_time=t,
                steps=-150, cluster_step=cluster))
    for window in (50, 100):
        assert trace.speed_series(window) == _reference_speed_series(trace, window)


def test_empty_and_degenerate_traces():
    trace = TrainingTrace(model_name="m", cluster_description="c")
    assert trace.total_steps == 0
    assert trace.duration == 0.0
    assert trace.worker_ids() == []
    assert trace.speed_series() == []
    with pytest.raises(DataError):
        trace.cluster_speed()
    with pytest.raises(DataError):
        trace.worker_step_times("w0")
    with pytest.raises(DataError):
        trace.speed_series(window_steps=0)


# ---------------------------------------------------------------------------
# Bounded-memory behaviour (PR 4): growth cap, shrink-to-fit, summary sink.
# ---------------------------------------------------------------------------
def test_growth_cap_switches_to_linear(monkeypatch):
    from repro.training import trace as trace_module

    monkeypatch.setattr(trace_module, "GROWTH_CAP_ROWS", 128)
    records = StepRecordArray()
    for i in range(1000):
        records.append_row("w0", float(i), float(i + 1), 10, (i + 1) * 10,
                           (i + 1) * 10)
    # Beyond the cap, capacity grows by at most one cap per resize instead
    # of doubling, so the slack never exceeds one cap's worth of rows.
    assert len(records._widx) - len(records) <= 128
    assert records[999].cluster_step == 10_000


def test_shrink_to_fit_trims_and_stays_appendable():
    records = StepRecordArray()
    for i in range(100):
        records.append_row("w0", float(i), float(i + 1), 10, (i + 1) * 10)
    assert len(records._widx) > len(records)
    before = list(records)
    records.shrink_to_fit()
    assert len(records._widx) == len(records) == 100
    assert list(records) == before
    records.append_row("w1", 100.0, 101.0, 10, 1010)
    assert len(records) == 101 and records[100].worker_id == "w1"


def test_step_record_summary_folds_aggregates():
    from repro.training.trace import StepRecordSummary

    summary = StepRecordSummary()
    summary.append(StepRecord("w0", 0.0, 1.5, 10, 10, 10))
    summary.append_row("w1", 1.0, 2.5, 10, 20, 10)
    summary.extend_rows(["w0", "w1"], [2.0, 2.2], [3.0, 3.4], [10, 10],
                        [30, 40], [20, 20])
    assert len(summary) == 4
    assert summary.steps_total == 40
    assert summary.max_end_time == 3.4
    assert summary.first_start_time == 0.0
    assert set(summary.worker_names) == {"w0", "w1"}
    assert summary.worker_steps_done("w1") == 20
    summary.shrink_to_fit()  # no-op, but part of the shared sink surface
    assert summary.nbytes < 1024
    with pytest.raises(DataError):
        summary.extend_rows(["w0"], [], [], [], [], [])


def test_summary_trace_keeps_aggregates_but_refuses_row_statistics():
    from repro.training.trace import StepRecordSummary

    trace = TrainingTrace(model_name="m", cluster_description="c",
                          step_records=StepRecordSummary())
    trace.step_records.append_row("w0", 0.0, 2.0, 10, 10, 10)
    assert trace.total_steps == 10
    assert trace.duration == 2.0  # falls back to the max end time
    with pytest.raises(DataError):
        trace.cluster_speed()
    with pytest.raises(DataError):
        trace.speed_series()
    with pytest.raises(DataError):
        trace.worker_step_times("w0")
    # summary() degrades gracefully: aggregates only, no speed.
    assert trace.summary()["total_steps"] == 10.0
    assert "cluster_speed" not in trace.summary()
