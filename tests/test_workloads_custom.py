"""Tests for the generic custom-CNN builder."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.step_time import StepTimeModel
from repro.workloads.custom import build_plain_cnn, complexity_sweep
from repro.workloads.profiler import profile_model


def test_plain_cnn_structure():
    graph = build_plain_cnn(num_stages=3, blocks_per_stage=2, base_width=32)
    assert graph.family == "plain_cnn"
    assert graph.name == "plain_cnn_d7_w32"
    # 3 stages x 2 blocks x (conv + bn + relu) + pooling + dense.
    assert graph.num_layers == 3 * 2 * 3 + 2
    assert graph.params > 0
    assert graph.gflops > 0


def test_plain_cnn_depth_and_width_increase_complexity():
    narrow = build_plain_cnn(base_width=16)
    wide = build_plain_cnn(base_width=48)
    shallow = build_plain_cnn(blocks_per_stage=1)
    deep = build_plain_cnn(blocks_per_stage=4)
    assert wide.gflops > narrow.gflops
    assert deep.gflops > shallow.gflops
    assert wide.params > narrow.params


def test_plain_cnn_resolution_halves_per_stage():
    graph = build_plain_cnn(num_stages=3, blocks_per_stage=1, base_width=8)
    shapes = [stat.output_shape for stat in graph.layer_stats()]
    # The final conv stage runs at 8x8 for a 32x32 input.
    conv_shapes = [shape for shape in shapes if shape[2] == 32]
    assert conv_shapes[0][:2] == (8, 8)


def test_plain_cnn_validation():
    with pytest.raises(ConfigurationError):
        build_plain_cnn(num_stages=0)
    with pytest.raises(ConfigurationError):
        build_plain_cnn(num_stages=6)
    with pytest.raises(ConfigurationError):
        build_plain_cnn(blocks_per_stage=0)
    with pytest.raises(ConfigurationError):
        build_plain_cnn(base_width=0)
    with pytest.raises(ConfigurationError):
        build_plain_cnn(kernel_size=4)


def test_complexity_sweep_is_sorted_and_usable_for_prediction():
    graphs = complexity_sweep()
    assert len(graphs) == 12
    gflops = [graph.gflops for graph in graphs]
    assert gflops == sorted(gflops)
    assert gflops[-1] > 5 * gflops[0]
    # The sweep plugs straight into the ground-truth step-time model, i.e. it
    # can extend a measurement campaign with new complexity points.
    model = StepTimeModel()
    profiles = [profile_model(graph) for graph in graphs]
    times = [model.mean_step_time(profile.gflops, "k80") for profile in profiles]
    assert times == sorted(times)


def test_complexity_sweep_checkpoints_scale():
    graphs = complexity_sweep(widths=(1, 4), depths=(2,))
    small, large = (profile_model(graph) for graph in graphs)
    assert large.checkpoint.total_bytes > small.checkpoint.total_bytes
