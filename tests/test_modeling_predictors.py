"""Tests for the Table II / Table IV predictors and cluster-speed composition."""

import pytest

from repro.errors import DataError, ModelingError, NotFittedError
from repro.modeling.checkpoint_predictor import (
    TABLE4_MODEL_SPECS,
    CheckpointTimePredictor,
    build_table4_models,
    evaluate_table4_models,
)
from repro.modeling.speed_predictor import (
    TABLE2_MODEL_SPECS,
    ClusterSpeedPredictor,
    StepTimeModelSpec,
    StepTimePredictor,
    build_table2_models,
    evaluate_table2_models,
)
from repro.perf.ps_capacity import PSCapacityModel


@pytest.fixture(scope="module")
def speed_measurements(speed_dataset):
    return speed_dataset.measurements()


@pytest.fixture(scope="module")
def checkpoint_measurements(checkpoint_dataset):
    return checkpoint_dataset.measurements()


def test_table2_has_eight_models():
    assert len(TABLE2_MODEL_SPECS) == 8
    gpu_specific = [s for s in TABLE2_MODEL_SPECS if s.gpu_name is not None]
    assert len(gpu_specific) == 6
    assert {s.gpu_name for s in gpu_specific} == {"k80", "p100"}


def test_gpu_specific_predictor_accuracy(speed_measurements, catalog):
    truth = {m.model_name: m.step_time for m in speed_measurements
             if m.gpu_name == "k80"}
    # The linear K80 model lands within the paper's reported MAE band
    # (~0.065 s) on the named models; the SVR-RBF variant fits the small
    # models noticeably better, as in Table II.
    linear = StepTimePredictor(
        StepTimeModelSpec("Univariate, K80", "cm", "linear", "k80")).fit(speed_measurements)
    svr = StepTimePredictor(
        StepTimeModelSpec("SVR RBF Kernel, K80", "cm", "svr_rbf", "k80")).fit(speed_measurements)
    for name in ("resnet_15", "resnet_32", "shake_shake_big"):
        gflops = catalog.profile(name).gflops
        assert abs(linear.predict_step_time(gflops, "k80") - truth[name]) < 0.10
        assert abs(svr.predict_step_time(gflops, "k80") - truth[name]) < 0.06


def test_svr_rbf_beats_gpu_agnostic_multivariate(speed_measurements):
    rows = {row.spec.name: row for row in evaluate_table2_models(speed_measurements,
                                                                 seed=3)}
    assert rows["SVR RBF Kernel, K80"].test_mae < rows["Multivariate, GPU-agnostic"].test_mae
    # The paper's headline: GPU-specific SVR-RBF reaches ~9% MAPE; allow slack
    # for the smaller simulated dataset.
    assert rows["SVR RBF Kernel, K80"].test_mape < 25.0


def test_gpu_specific_models_reject_other_gpus(speed_measurements, catalog):
    spec = StepTimeModelSpec("Univariate, K80", "cm", "linear", "k80")
    predictor = StepTimePredictor(spec).fit(speed_measurements)
    with pytest.raises(ModelingError):
        predictor.predict_step_time(catalog.profile("resnet_15").gflops, "p100")


def test_predictor_requires_fit(catalog):
    spec = StepTimeModelSpec("Univariate, K80", "cm", "linear", "k80")
    with pytest.raises(NotFittedError):
        StepTimePredictor(spec).predict_step_time(1.0, "k80")


def test_predictor_rejects_unknown_modes():
    with pytest.raises(ModelingError):
        StepTimePredictor(StepTimeModelSpec("x", "bad", "linear", None))
    with pytest.raises(ModelingError):
        StepTimePredictor(StepTimeModelSpec("x", "cm", "bad", None))


def test_predictor_requires_enough_data(speed_measurements):
    spec = StepTimeModelSpec("Univariate, K80", "cm", "linear", "k80")
    with pytest.raises(DataError):
        StepTimePredictor(spec).fit(speed_measurements[:2])


def test_build_table2_models_predict_speeds(speed_measurements, catalog):
    models = build_table2_models(speed_measurements)
    assert set(models) == {spec.name for spec in TABLE2_MODEL_SPECS}
    gflops = catalog.profile("resnet_32").gflops
    agnostic = models["Univariate, GPU-agnostic"].predict_speed(gflops, "k80")
    specific = models["Univariate, K80"].predict_speed(gflops, "k80")
    assert agnostic > 0 and specific > 0


def test_cluster_speed_predictor_sums_workers(speed_measurements, catalog):
    models = build_table2_models(speed_measurements)
    predictor = ClusterSpeedPredictor(
        per_gpu_predictors={"k80": models["SVR RBF Kernel, K80"],
                            "p100": models["SVR RBF Kernel, P100"]},
        step_time_predictor=models["Univariate, GPU-agnostic"])
    gflops = catalog.profile("resnet_32").gflops
    speeds = predictor.predict_worker_speeds(gflops, ["k80", "k80", "p100"])
    assert len(speeds) == 3
    assert predictor.predict_cluster_speed(gflops, ["k80", "k80", "p100"]) == pytest.approx(
        sum(speeds))
    # Heterogeneous-cluster prediction: K80 + P100 speed sits between the two
    # homogeneous two-worker clusters.
    hetero = predictor.predict_cluster_speed(gflops, ["k80", "p100"])
    assert (predictor.predict_cluster_speed(gflops, ["k80", "k80"]) < hetero
            < predictor.predict_cluster_speed(gflops, ["p100", "p100"]))


def test_cluster_speed_predictor_with_ps_bottleneck(speed_measurements, catalog):
    models = build_table2_models(speed_measurements)
    predictor = ClusterSpeedPredictor(
        step_time_predictor=models["Univariate, GPU-agnostic"],
        per_gpu_predictors={"p100": models["SVR RBF Kernel, P100"]},
        ps_capacity_model=PSCapacityModel())
    profile = catalog.profile("resnet_32")
    plain = predictor.predict_cluster_speed(profile.gflops, ["p100"] * 8)
    capped = predictor.predict_with_ps_bottleneck(profile.gflops, ["p100"] * 8,
                                                  profile.parameter_bytes)
    assert capped < plain


def test_cluster_speed_predictor_validation(speed_measurements):
    with pytest.raises(ModelingError):
        ClusterSpeedPredictor()
    models = build_table2_models(speed_measurements)
    predictor = ClusterSpeedPredictor(step_time_predictor=models["Univariate, GPU-agnostic"])
    with pytest.raises(ModelingError):
        predictor.predict_cluster_speed(1.0, [])
    with pytest.raises(ModelingError):
        predictor.predict_with_ps_bottleneck(1.0, ["k80"], 1024)


def test_table4_has_four_models():
    assert len(TABLE4_MODEL_SPECS) == 4
    assert TABLE4_MODEL_SPECS[-1].estimator == "svr_rbf"


def test_checkpoint_predictors_fit_and_predict(checkpoint_measurements, catalog):
    models = build_table4_models(checkpoint_measurements)
    files = catalog.profile("resnet_32").checkpoint
    for name, model in models.items():
        predicted = model.predict_time(files)
        # Ground truth for ResNet-32 is ~3.84 s.
        assert predicted == pytest.approx(3.84, rel=0.4), name


def test_checkpoint_evaluation_rows(checkpoint_measurements):
    rows = evaluate_table4_models(checkpoint_measurements, seed=1)
    assert len(rows) == 4
    for row in rows:
        assert row.kfold_mae >= 0
        assert row.test_mae >= 0
    by_name = {row.spec.name: row for row in rows}
    # The headline claim: the checkpoint models predict within a few percent;
    # the univariate linear model is already good because the ground truth is
    # linear in checkpoint size.
    assert by_name["Univariate"].test_mape < 20.0


def test_checkpoint_predictor_validation(checkpoint_measurements, catalog):
    with pytest.raises(ModelingError):
        CheckpointTimePredictor(TABLE4_MODEL_SPECS[0].__class__("x", "bad", "linear"))
    with pytest.raises(NotFittedError):
        CheckpointTimePredictor(TABLE4_MODEL_SPECS[0]).predict_time(
            catalog.profile("resnet_15").checkpoint)
    with pytest.raises(DataError):
        CheckpointTimePredictor(TABLE4_MODEL_SPECS[0]).fit(checkpoint_measurements[:2])
