"""Tests for the step-time ground truth (Table I calibration)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.calibration import PAPER_MODEL_GFLOPS, PAPER_TABLE1_SPEEDS
from repro.perf.step_time import StepTimeModel


@pytest.fixture()
def model():
    return StepTimeModel(rng=np.random.default_rng(0))


def test_anchor_speeds_match_table1(model):
    for gpu, rows in PAPER_TABLE1_SPEEDS.items():
        for cnn, (speed, _std) in rows.items():
            gflops = PAPER_MODEL_GFLOPS[cnn]
            assert model.mean_speed(gflops, gpu) == pytest.approx(speed, rel=1e-6)


def test_step_time_monotone_in_model_complexity(model):
    for gpu in ("k80", "p100", "v100"):
        times = [model.mean_step_time(g, gpu) for g in (0.3, 0.8, 1.5, 3.0, 10.0, 25.0)]
        assert times == sorted(times)


def test_faster_gpus_are_faster(model):
    for gflops in (0.6, 1.5, 5.0, 21.0):
        k80 = model.mean_step_time(gflops, "k80")
        p100 = model.mean_step_time(gflops, "p100")
        v100 = model.mean_step_time(gflops, "v100")
        assert k80 > p100 > v100


def test_extrapolation_below_smallest_anchor_is_positive(model):
    assert model.mean_step_time(0.05, "k80") > 0
    assert model.mean_step_time(0.05, "v100") > 0


def test_invalid_gflops_rejected(model):
    with pytest.raises(ConfigurationError):
        model.mean_step_time(0.0, "k80")


def test_computation_ratio(model):
    assert model.computation_ratio(4.11, "k80") == pytest.approx(1.0)
    assert model.computation_ratio(9.53, "p100") == pytest.approx(1.0)


def test_scaling_efficiency_penalizes_saturating_models(model):
    # Shake-Shake Big on P100 exceeds the saturation threshold (Fig. 4).
    big = PAPER_MODEL_GFLOPS["shake_shake_big"]
    assert model.scaling_efficiency(big, "p100") < 0.2
    assert model.scaling_efficiency(big, "v100") > 0.8
    assert model.scaling_efficiency(PAPER_MODEL_GFLOPS["resnet_32"], "p100") > 0.99


def test_sampled_step_times_concentrate_around_mean(model):
    mean = model.mean_step_time(1.54, "k80")
    samples = [model.sample_step_time(1.54, "k80") for _ in range(500)]
    assert np.mean(samples) == pytest.approx(mean, rel=0.02)
    cov = np.std(samples) / np.mean(samples)
    assert cov < 0.03  # The paper observes CoV <= 0.02 for stable training.


def test_warmup_steps_are_slower(model):
    early = np.mean([StepTimeModel(rng=np.random.default_rng(i)).sample_step_time(
        1.54, "k80", step_index=0) for i in range(50)])
    late = np.mean([StepTimeModel(rng=np.random.default_rng(i)).sample_step_time(
        1.54, "k80", step_index=5000) for i in range(50)])
    assert early > late * 1.2


def test_contention_increases_variability(model):
    calm = [model.sample_step_time(1.54, "p100", ps_utilization=0.0) for _ in range(400)]
    contended = [model.sample_step_time(1.54, "p100", ps_utilization=1.0)
                 for _ in range(400)]
    assert np.std(contended) / np.mean(contended) > np.std(calm) / np.mean(calm)


def test_slowdown_scales_mean(model):
    base = model.mean_step_time(1.54, "p100")
    samples = [model.sample_step_time(1.54, "p100", slowdown=2.0) for _ in range(300)]
    assert np.mean(samples) == pytest.approx(2.0 * base, rel=0.05)


def test_negative_step_index_rejected(model):
    with pytest.raises(ConfigurationError):
        model.sample_step_time(1.0, "k80", step_index=-1)
