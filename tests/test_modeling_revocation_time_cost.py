"""Tests for the revocation estimator, Eq. 4/5 estimator, and cost model."""

import pytest

from repro.cloud.revocation import RevocationModel
from repro.errors import ConfigurationError, DataError, ModelingError
from repro.modeling.checkpoint_predictor import TABLE4_MODEL_SPECS, CheckpointTimePredictor
from repro.modeling.cost import ClusterCostModel
from repro.modeling.revocation_estimator import (
    EmpiricalLifetimeDistribution,
    RevocationEstimator,
)
from repro.modeling.speed_predictor import (
    ClusterSpeedPredictor,
    StepTimeModelSpec,
    StepTimePredictor,
)
from repro.modeling.training_time import TrainingTimeEstimator
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob


def test_empirical_distribution_cdf_saturates_at_fraction():
    dist = EmpiricalLifetimeDistribution(lifetimes_hours=[1.0, 2.0, 5.0, 10.0],
                                         num_launched=10)
    assert dist.revocation_fraction == pytest.approx(0.4)
    assert dist.cdf(0.5) == 0.0
    assert dist.cdf(2.0) == pytest.approx(0.2)
    assert dist.cdf(24.0) == pytest.approx(0.4)
    assert dist.cdf(100.0) == pytest.approx(0.4)
    assert dist.mean_lifetime() == pytest.approx((1 + 2 + 5 + 10 + 6 * 24) / 10)
    assert dist.mean_time_to_revocation() == pytest.approx(4.5)


def test_empirical_distribution_validation():
    with pytest.raises(DataError):
        EmpiricalLifetimeDistribution(lifetimes_hours=[1.0], num_launched=0)
    with pytest.raises(DataError):
        EmpiricalLifetimeDistribution(lifetimes_hours=[1.0, 2.0], num_launched=1)
    with pytest.raises(DataError):
        EmpiricalLifetimeDistribution(lifetimes_hours=[-1.0], num_launched=2)
    with pytest.raises(DataError):
        EmpiricalLifetimeDistribution(lifetimes_hours=[], num_launched=5).mean_time_to_revocation()


def test_estimator_uses_observations_then_fallback():
    estimator = RevocationEstimator(fallback_model=RevocationModel())
    estimator.add_observations("k80", "us-east1", [1.0, 3.0, 6.0], num_launched=10)
    observed = estimator.revocation_probability("k80", "us-east1", 6.0)
    assert observed == pytest.approx(0.3)
    # No observations for this cell: falls back to the calibrated model.
    fallback = estimator.revocation_probability("v100", "asia-east1", 6.0)
    assert 0.0 < fallback < 0.47
    assert estimator.cells() == [("k80", "us-east1")]


def test_estimator_without_fallback_raises():
    estimator = RevocationEstimator()
    with pytest.raises(DataError):
        estimator.revocation_probability("k80", "us-east1", 1.0)
    with pytest.raises(DataError):
        estimator.distribution("k80", "us-east1")


def test_expected_revocations_sums_probabilities():
    estimator = RevocationEstimator()
    estimator.add_observations("k80", "us-east1", [1.0, 2.0], num_launched=4)
    estimator.add_observations("p100", "us-east1", [0.5], num_launched=4)
    workers = [("k80", "us-east1"), ("k80", "us-east1"), ("p100", "us-east1")]
    expected = estimator.expected_revocations(workers, duration_hours=3.0)
    assert expected == pytest.approx(0.5 + 0.5 + 0.25)


def test_safest_region_prefers_low_revocation():
    estimator = RevocationEstimator()
    estimator.add_observations("k80", "us-west1", [10.0], num_launched=10)
    estimator.add_observations("k80", "europe-west1", [1.0] * 6, num_launched=10)
    region, probability = estimator.safest_region("k80", duration_hours=12.0)
    assert region == "us-west1"
    assert probability == pytest.approx(0.1)


@pytest.fixture(scope="module")
def fitted_estimator(speed_dataset, checkpoint_dataset):
    speed_models = {
        "k80": StepTimePredictor(StepTimeModelSpec("Univariate, K80", "cm", "linear",
                                                   "k80")).fit(speed_dataset.measurements()),
        "p100": StepTimePredictor(StepTimeModelSpec("Univariate, P100", "cm", "linear",
                                                    "p100")).fit(speed_dataset.measurements()),
    }
    cluster_predictor = ClusterSpeedPredictor(per_gpu_predictors=speed_models)
    checkpoint_predictor = CheckpointTimePredictor(TABLE4_MODEL_SPECS[0]).fit(
        checkpoint_dataset.measurements())
    revocation = RevocationEstimator(fallback_model=RevocationModel())
    return TrainingTimeEstimator(cluster_predictor, checkpoint_predictor, revocation)


def test_training_time_prediction_components(fitted_estimator, resnet32_profile):
    job = TrainingJob(profile=resnet32_profile, total_steps=64_000,
                      checkpoint_interval_steps=4000)
    cluster = ClusterSpec.from_counts(k80=2, region_name="us-east1")
    prediction = fitted_estimator.predict(job, cluster)
    assert prediction.num_checkpoints == 16
    assert prediction.compute_seconds == pytest.approx(64_000 / prediction.cluster_speed)
    assert prediction.checkpoint_seconds == pytest.approx(
        16 * prediction.checkpoint_time)
    assert prediction.expected_revocations > 0
    assert prediction.total_seconds == pytest.approx(
        prediction.compute_seconds + prediction.checkpoint_seconds
        + prediction.revocation_seconds)
    assert prediction.total_hours == pytest.approx(prediction.total_seconds / 3600.0)


def test_on_demand_cluster_has_no_revocation_term(fitted_estimator, resnet32_profile):
    job = TrainingJob(profile=resnet32_profile, total_steps=8000,
                      checkpoint_interval_steps=4000)
    cluster = ClusterSpec.from_counts(k80=2, transient=False)
    prediction = fitted_estimator.predict(job, cluster)
    assert prediction.expected_revocations == 0.0
    assert prediction.revocation_seconds == 0.0


def test_prediction_error_helper(fitted_estimator):
    assert fitted_estimator.prediction_error(110.0, 100.0) == pytest.approx(0.1)
    with pytest.raises(ModelingError):
        fitted_estimator.prediction_error(1.0, 0.0)


def test_estimator_validation(fitted_estimator, resnet32_profile):
    job = TrainingJob(profile=resnet32_profile, total_steps=100)
    with pytest.raises(ModelingError):
        fitted_estimator.predict(job, ClusterSpec.single("k80"), fixed_point_iterations=0)
    with pytest.raises(ConfigurationError):
        TrainingTimeEstimator(fitted_estimator.cluster_speed_predictor,
                              fitted_estimator.checkpoint_predictor,
                              provisioning_seconds=-1.0)


def test_cost_model_transient_cheaper(fitted_estimator, resnet32_profile):
    job = TrainingJob(profile=resnet32_profile, total_steps=64_000,
                      checkpoint_interval_steps=4000)
    cluster = ClusterSpec.from_counts(p100=4, region_name="us-east1")
    prediction = fitted_estimator.predict(job, cluster)
    estimate = ClusterCostModel().estimate(cluster, prediction)
    assert estimate.transient_cost_usd < estimate.on_demand_cost_usd
    assert 0.4 < estimate.savings_fraction < 0.85
    assert estimate.transient_duration_hours >= estimate.on_demand_duration_hours


def test_cost_model_hourly_rate_and_per_step(resnet32_profile):
    model = ClusterCostModel()
    cluster = ClusterSpec.from_counts(k80=2)
    transient_rate = model.hourly_rate(cluster, transient_workers=True)
    on_demand_rate = model.hourly_rate(cluster, transient_workers=False)
    assert transient_rate < on_demand_rate
    assert model.cost_per_step(cluster, cluster_speed=9.0, transient_workers=True) > 0
    with pytest.raises(ConfigurationError):
        model.cost_per_step(cluster, cluster_speed=0.0, transient_workers=True)
