"""Tests for the extension features: launch advisor and mitigation planner."""

import pytest

from repro.cloud.revocation import RevocationModel
from repro.cmdare.mitigation import MitigationPlanner
from repro.errors import ConfigurationError
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession


# ---------------------------------------------------------------------------
# Launch advisor.
# ---------------------------------------------------------------------------
def test_advisor_prefers_low_revocation_regions():
    advisor = LaunchAdvisor(samples_per_option=200, seed=1)
    options = advisor.rank_options("k80", duration_hours=6.0,
                                   region_names=("us-west1", "europe-west1"),
                                   launch_hours=(8,))
    assert options[0].region_name == "us-west1"
    assert options[0].revocation_probability < options[-1].revocation_probability


def test_advisor_recommend_matches_rank():
    advisor = LaunchAdvisor(samples_per_option=150, seed=2)
    ranked = advisor.rank_options("v100", duration_hours=8.0, launch_hours=(0, 12))
    best = advisor.recommend("v100", duration_hours=8.0, launch_hours=(0, 12))
    assert best == ranked[0]
    # Every option concerns a region that actually offers V100s.
    assert all(option.region_name in ("us-central1", "us-west1", "europe-west4",
                                      "asia-east1") for option in ranked)


def test_advisor_expected_revocations_scale_with_workers():
    advisor = LaunchAdvisor(samples_per_option=150, seed=3)
    single = advisor.score_option("k80", "us-east1", 8, duration_hours=12.0,
                                  num_workers=1)
    quad = advisor.score_option("k80", "us-east1", 8, duration_hours=12.0,
                                num_workers=4)
    assert quad.expected_revocations == pytest.approx(4 * single.expected_revocations)


def test_advisor_longer_runs_are_riskier():
    advisor = LaunchAdvisor(samples_per_option=400, seed=4)
    short = advisor.score_option("p100", "us-central1", 10, duration_hours=2.0)
    long = advisor.score_option("p100", "us-central1", 10, duration_hours=20.0)
    assert long.revocation_probability > short.revocation_probability


def test_advisor_accepts_custom_model_and_validates():
    advisor = LaunchAdvisor(revocation_model=RevocationModel(), samples_per_option=50)
    option = advisor.score_option("k80", "us-central1", 0, duration_hours=4.0)
    assert 0.0 <= option.revocation_probability <= 1.0
    with pytest.raises(ConfigurationError):
        LaunchAdvisor(samples_per_option=1)
    with pytest.raises(ConfigurationError):
        advisor.score_option("k80", "us-central1", 0, duration_hours=0.0)
    with pytest.raises(ConfigurationError):
        advisor.score_option("k80", "us-central1", 0, duration_hours=1.0, num_workers=0)


# ---------------------------------------------------------------------------
# Mitigation planner.
# ---------------------------------------------------------------------------
def test_planner_recommends_mitigation_for_saturated_cluster(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "p100")] * 8
    plan = planner.plan(speeds, resnet32_profile.parameter_bytes,
                        remaining_steps=50_000)
    assert plan.worthwhile
    assert plan.speedup > 1.4
    assert plan.time_saved_seconds > 100.0
    assert plan.extra_cost_usd > 0.0
    assert plan.breakeven_steps < 50_000


def test_planner_rejects_mitigation_when_not_bottlenecked(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "k80")] * 2
    plan = planner.plan(speeds, resnet32_profile.parameter_bytes,
                        remaining_steps=50_000)
    assert not plan.worthwhile
    assert plan.speedup < 1.05


def test_planner_rejects_mitigation_near_the_end_of_training(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "p100")] * 8
    plan = planner.plan(speeds, resnet32_profile.parameter_bytes, remaining_steps=100)
    assert not plan.worthwhile
    assert plan.time_saved_seconds < 30.0


def test_planner_uses_measured_speed_when_provided(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "p100")] * 8
    modeled = planner.plan(speeds, resnet32_profile.parameter_bytes, 20_000)
    slower = planner.plan(speeds, resnet32_profile.parameter_bytes, 20_000,
                          measured_speed=modeled.current_speed * 0.8)
    assert slower.time_saved_seconds > modeled.time_saved_seconds


def test_planner_for_live_session(resnet32_profile):
    session = TrainingSession(Simulator(), ClusterSpec.from_counts(p100=8),
                              measurement_job(resnet32_profile, steps=20_000),
                              streams=RandomStreams(0))
    plan = MitigationPlanner().plan_for_session(session)
    assert plan.remaining_steps == 20_000
    assert plan.worthwhile


def test_planner_validation(resnet32_profile):
    planner = MitigationPlanner()
    with pytest.raises(ConfigurationError):
        planner.plan([], resnet32_profile.parameter_bytes, 100)
    with pytest.raises(ConfigurationError):
        planner.plan([1.0], resnet32_profile.parameter_bytes, -1)
    with pytest.raises(ConfigurationError):
        planner.plan([1.0], resnet32_profile.parameter_bytes, 10, additional_servers=0)
    with pytest.raises(ConfigurationError):
        MitigationPlanner(restart_overhead_seconds=-1.0)
