"""Tests for the extension features: launch advisor and mitigation planner."""

import pytest

from repro.cloud.revocation import RevocationModel
from repro.cmdare.mitigation import MitigationPlanner
from repro.errors import ConfigurationError
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession


# ---------------------------------------------------------------------------
# Launch advisor (grid-mode queries).
# ---------------------------------------------------------------------------
def grid_query(**overrides):
    params = dict(gpu_name="k80", duration_hours=6.0,
                  region_names=("us-west1", "europe-west1"), launch_hours=(8,))
    params.update(overrides)
    return PlacementQuery(**params)


def test_advisor_prefers_low_revocation_regions():
    advisor = LaunchAdvisor(samples_per_option=200, seed=1)
    options = advisor.answer(grid_query()).options
    assert options[0].region_name == "us-west1"
    assert options[0].revocation_probability < options[-1].revocation_probability


def test_advisor_grid_decision_covers_the_calibrated_regions():
    advisor = LaunchAdvisor(samples_per_option=150, seed=2)
    decision = advisor.answer(grid_query(gpu_name="v100", duration_hours=8.0,
                                         region_names=None, launch_hours=(0, 12)))
    # Poolless queries are always feasible, so best == options[0], and the
    # options are sorted safest first.
    assert decision.best == decision.options[0]
    scores = [option.score for option in decision.options]
    assert scores == sorted(scores)
    # Every option concerns a region that actually offers V100s.
    assert all(option.region_name in ("us-central1", "us-west1", "europe-west4",
                                      "asia-east1") for option in decision.options)


def test_advisor_expected_revocations_scale_with_workers():
    advisor = LaunchAdvisor(samples_per_option=150, seed=3)
    query = grid_query(region_names=("us-east1",), duration_hours=12.0)
    single = advisor.answer(query).options[0]
    quad = advisor.answer(grid_query(region_names=("us-east1",),
                                     duration_hours=12.0,
                                     num_workers=4)).options[0]
    assert quad.expected_revocations == pytest.approx(4 * single.expected_revocations)


def test_advisor_longer_runs_are_riskier():
    advisor = LaunchAdvisor(samples_per_option=400, seed=4)
    short = advisor.answer(grid_query(gpu_name="p100", region_names=("us-central1",),
                                      launch_hours=(10,), duration_hours=2.0))
    long = advisor.answer(grid_query(gpu_name="p100", region_names=("us-central1",),
                                     launch_hours=(10,), duration_hours=20.0))
    assert (long.options[0].revocation_probability
            > short.options[0].revocation_probability)


def test_advisor_accepts_custom_model_and_validates():
    advisor = LaunchAdvisor(revocation_model=RevocationModel(), samples_per_option=50)
    option = advisor.answer(grid_query(region_names=("us-central1",),
                                       launch_hours=(0,),
                                       duration_hours=4.0)).options[0]
    assert 0.0 <= option.revocation_probability <= 1.0
    with pytest.raises(ConfigurationError):
        LaunchAdvisor(samples_per_option=1)
    with pytest.raises(ConfigurationError):
        LaunchAdvisor(score_backend="bogus")
    with pytest.raises(ConfigurationError):
        grid_query(duration_hours=0.0)
    with pytest.raises(ConfigurationError):
        grid_query(num_workers=0)


# ---------------------------------------------------------------------------
# Pool-aware placement.
# ---------------------------------------------------------------------------
def place_pool(capacity):
    """A live TransientPool the live-query mode can score against."""
    from repro.scenarios.pool import TransientPool

    return TransientPool(Simulator(), capacity, reclaim_seconds=600.0)


def live_query(**overrides):
    params = dict(gpu_name="k80", duration_hours=2.0, hour_of_day_utc=9.0)
    params.update(overrides)
    return PlacementQuery(**params)


def test_place_ranks_feasible_options_first():
    pool = place_pool({("k80", "us-west1"): 2, ("k80", "europe-west1"): 2})
    pool.acquire("k80", "us-west1")
    pool.acquire("k80", "us-west1")  # us-west1 exhausted
    advisor = LaunchAdvisor(samples_per_option=100, seed=7)
    decision = advisor.answer(live_query(), pool=pool.snapshot())
    options = decision.options
    assert [option.region_name for option in options if option.feasible] \
        == ["europe-west1"]
    assert options[0].feasible and options[0].region_name == "europe-west1"
    assert not options[-1].feasible and options[-1].region_name == "us-west1"
    assert decision.best.region_name == "europe-west1"
    assert decision.pool_version == pool.version


def test_place_prefers_the_safer_region_when_both_are_free():
    pool = place_pool({("k80", "us-west1"): 2, ("k80", "europe-west1"): 2})
    advisor = LaunchAdvisor(samples_per_option=400, seed=7)
    # us-west1 is the study's most stable K80 region, europe-west1 the
    # storm region (Fig. 8): with equal availability the calibrated score
    # must prefer us-west1 at any hour.
    decision = advisor.answer(live_query(), pool=pool.snapshot())
    assert decision.best.region_name == "us-west1"
    assert decision.best.revocation_probability < max(
        option.revocation_probability for option in decision.options)


def test_place_penalizes_queue_pressure():
    # Waiters can only exist on an exhausted cell (the pool grants while
    # anything is acquirable), so queue pressure orders the infeasible
    # tail: between two exhausted cells, the one with the deeper waiter
    # queue must rank later once the pressure penalty outweighs the
    # revocation-score gap.
    pool = place_pool({("k80", "us-west1"): 2, ("k80", "europe-west1"): 2})
    for region in ("us-west1", "europe-west1"):
        pool.acquire("k80", region)
        pool.acquire("k80", region)
    for index in range(2):
        pool.request_replacement("k80", "us-west1", lambda warm: None,
                                 queue=True, label=f"w{index}")
    advisor = LaunchAdvisor(samples_per_option=400, seed=7)
    snapshot = pool.snapshot()
    unpressured = advisor.answer(live_query(queue_weight=0.0),
                                 pool=snapshot).options
    assert [option.region_name for option in unpressured] \
        == ["us-west1", "europe-west1"]  # safest first, no penalty
    assert all(not option.feasible for option in unpressured)
    assert unpressured[0].queue_depth == 2
    pressured = advisor.answer(live_query(queue_weight=10.0),
                               pool=snapshot).options
    assert [option.region_name for option in pressured] \
        == ["europe-west1", "us-west1"]
    assert advisor.answer(live_query(), pool=snapshot).best is None
    with pytest.raises(ConfigurationError):
        live_query(queue_weight=-1.0)


def test_place_is_deterministic_and_score_order_independent():
    pool = place_pool({("k80", "us-west1"): 2, ("k80", "europe-west1"): 2})
    advisor = LaunchAdvisor(samples_per_option=100, seed=3)
    snapshot = pool.snapshot()
    first = advisor.answer(live_query(), pool=snapshot)
    again = advisor.answer(live_query(), pool=snapshot)
    assert first == again
    # Scores are independent of the order options were first evaluated.
    fresh = LaunchAdvisor(samples_per_option=100, seed=3)
    fresh.revocation_score("k80", "europe-west1",
                           first.options[0].launch_hour_local, 2.0)
    assert fresh.answer(live_query(), pool=snapshot) == first


def test_place_with_nothing_acquirable_returns_no_feasible_option():
    pool = place_pool({("k80", "us-west1"): 1})
    pool.acquire("k80", "us-west1")
    advisor = LaunchAdvisor(samples_per_option=100, seed=1)
    snapshot = pool.snapshot()
    assert advisor.answer(live_query(hour_of_day_utc=0.0),
                          pool=snapshot).best is None
    with pytest.raises(ConfigurationError):
        # No v100 cells in the pool.
        advisor.answer(live_query(gpu_name="v100", hour_of_day_utc=0.0),
                       pool=snapshot)


# ---------------------------------------------------------------------------
# Mitigation planner.
# ---------------------------------------------------------------------------
def test_planner_recommends_mitigation_for_saturated_cluster(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "p100")] * 8
    plan = planner.plan(speeds, resnet32_profile.parameter_bytes,
                        remaining_steps=50_000)
    assert plan.worthwhile
    assert plan.speedup > 1.4
    assert plan.time_saved_seconds > 100.0
    assert plan.extra_cost_usd > 0.0
    assert plan.breakeven_steps < 50_000


def test_planner_rejects_mitigation_when_not_bottlenecked(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "k80")] * 2
    plan = planner.plan(speeds, resnet32_profile.parameter_bytes,
                        remaining_steps=50_000)
    assert not plan.worthwhile
    assert plan.speedup < 1.05


def test_planner_rejects_mitigation_near_the_end_of_training(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "p100")] * 8
    plan = planner.plan(speeds, resnet32_profile.parameter_bytes, remaining_steps=100)
    assert not plan.worthwhile
    assert plan.time_saved_seconds < 30.0


def test_planner_uses_measured_speed_when_provided(resnet32_profile):
    planner = MitigationPlanner()
    step_model = StepTimeModel()
    speeds = [step_model.mean_speed(resnet32_profile.gflops, "p100")] * 8
    modeled = planner.plan(speeds, resnet32_profile.parameter_bytes, 20_000)
    slower = planner.plan(speeds, resnet32_profile.parameter_bytes, 20_000,
                          measured_speed=modeled.current_speed * 0.8)
    assert slower.time_saved_seconds > modeled.time_saved_seconds


def test_planner_for_live_session(resnet32_profile):
    session = TrainingSession(Simulator(), ClusterSpec.from_counts(p100=8),
                              measurement_job(resnet32_profile, steps=20_000),
                              streams=RandomStreams(0))
    plan = MitigationPlanner().plan_for_session(session)
    assert plan.remaining_steps == 20_000
    assert plan.worthwhile


def test_planner_validation(resnet32_profile):
    planner = MitigationPlanner()
    with pytest.raises(ConfigurationError):
        planner.plan([], resnet32_profile.parameter_bytes, 100)
    with pytest.raises(ConfigurationError):
        planner.plan([1.0], resnet32_profile.parameter_bytes, -1)
    with pytest.raises(ConfigurationError):
        planner.plan([1.0], resnet32_profile.parameter_bytes, 10, additional_servers=0)
    with pytest.raises(ConfigurationError):
        MitigationPlanner(restart_overhead_seconds=-1.0)
