"""Golden-trace tests for the vectorized simulation fast-forward path.

The hard contract of the fast path: running a session with
``fast_forward=True`` is **bit-identical** to the chunked event-by-event
path — the same RNG streams are consumed in the same order, every trace
row carries the same floats, and the generators end in the same state.
These tests pin that down across the disturbance scenarios (checkpoints,
revocations, replacements, the legacy chief-IP restart) and across the
sweep runner's serial/parallel execution modes.
"""

import numpy as np
import pytest

from repro.measurement.speed_campaign import run_speed_campaign
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.faults import FaultInjector
from repro.training.job import TrainingJob
from repro.training.session import FASTFORWARD_ENV, TrainingSession


def _run_session(profile, fast_forward, cluster=None, steps=2000, interval=500,
                 seed=7, steps_per_event=10, inject=None):
    cluster = cluster if cluster is not None else ClusterSpec.single("k80")
    job = TrainingJob(profile=profile, total_steps=steps,
                      checkpoint_interval_steps=interval)
    streams = RandomStreams(seed)
    session = TrainingSession(Simulator(), cluster, job, streams=streams,
                              steps_per_event=steps_per_event,
                              fast_forward=fast_forward)
    if inject is not None:
        inject(session)
    trace = session.run_to_completion()
    return session, trace, streams


def _assert_bit_identical(profile, **kwargs):
    chunked_session, chunked, chunked_streams = _run_session(
        profile, fast_forward=False, **kwargs)
    fast_session, fast, fast_streams = _run_session(
        profile, fast_forward=True, **kwargs)
    # Every step-record column, exactly.
    a, b = chunked.step_records, fast.step_records
    assert len(a) == len(b)
    assert a.worker_names == b.worker_names
    assert np.array_equal(a.start_times, b.start_times)
    assert np.array_equal(a.end_times, b.end_times)
    assert np.array_equal(a.step_counts, b.step_counts)
    assert np.array_equal(a.cluster_step_counts, b.cluster_step_counts)
    assert np.array_equal(a.worker_step_counts, b.worker_step_counts)
    # Low-volume record lists and session outcome, exactly.
    assert chunked.checkpoint_records == fast.checkpoint_records
    assert chunked.revocation_records == fast.revocation_records
    assert chunked.replacement_records == fast.replacement_records
    assert chunked.end_time == fast.end_time
    assert chunked_session.ps_group.updates_applied == fast_session.ps_group.updates_applied
    # Identical RNG stream consumption (same draws, same order).
    for name in ("step_time", "checkpoint"):
        assert (chunked_streams.get(name).bit_generator.state
                == fast_streams.get(name).bit_generator.state)
    # The fast path actually fast-forwarded something.
    assert fast_session.fast_forward_chunks > 0
    assert chunked_session.fast_forward_chunks == 0
    return fast_session


def test_single_worker_with_checkpoints_bit_identical(resnet32_profile):
    _assert_bit_identical(resnet32_profile, steps=3000, interval=800)


def test_homogeneous_cluster_block_mode_bit_identical(resnet15_profile):
    session = _assert_bit_identical(
        resnet15_profile, cluster=ClusterSpec.from_counts(k80=8), steps=8000)
    # Warm-up span + one block span covering the rest of the workload.
    assert session.fast_forward_spans <= 3


def test_heterogeneous_cluster_bit_identical(resnet32_profile):
    _assert_bit_identical(
        resnet32_profile, cluster=ClusterSpec.from_counts(k80=2, p100=2),
        steps=3000)


@pytest.mark.parametrize("steps_per_event", [1, 7, 25])
def test_chunk_sizes_bit_identical(resnet32_profile, steps_per_event):
    _assert_bit_identical(resnet32_profile, steps=1000, interval=300,
                          steps_per_event=steps_per_event)


def test_revocation_and_checkpoint_mid_run_bit_identical(resnet15_profile):
    def inject(session):
        injector = FaultInjector(session)
        injector.revoke_at_step("worker-1", 800)
        injector.replace_at_step(WorkerSpec(gpu_name="k80"), 1500,
                                 overhead_seconds=20.0)

    _assert_bit_identical(resnet15_profile,
                          cluster=ClusterSpec.from_counts(k80=3),
                          steps=4000, interval=1000, inject=inject)


def test_legacy_chief_ip_restart_bit_identical(resnet15_profile):
    """Covers the restart window and the negative session-restart record."""
    def inject(session):
        injector = FaultInjector(session)
        injector.revoke_at_step("worker-0", 1200)
        injector.replace_at_step(WorkerSpec(gpu_name="k80"), 1600,
                                 overhead_seconds=5.0, reuse_chief_ip=True)

    _assert_bit_identical(resnet15_profile,
                          cluster=ClusterSpec.from_counts(k80=2),
                          steps=3000, interval=500, inject=inject)


def test_max_events_truncation_bit_identical(resnet15_profile):
    """run_to_completion(max_events=N) must truncate identically on both
    paths: fast-forwarded chunk completions count like processed events."""
    from repro.errors import TrainingError

    def truncated(fast_forward):
        cluster = ClusterSpec.from_counts(k80=2)
        job = TrainingJob(profile=resnet15_profile, total_steps=100_000,
                          checkpoint_interval_steps=2_000)
        streams = RandomStreams(5)
        session = TrainingSession(Simulator(), cluster, job, streams=streams,
                                  fast_forward=fast_forward)
        with pytest.raises(TrainingError):
            session.run_to_completion(max_events=137)
        return session, streams

    chunked_session, chunked_streams = truncated(False)
    fast_session, fast_streams = truncated(True)
    assert chunked_session.cluster_steps == fast_session.cluster_steps
    assert chunked_session.trace.step_records == fast_session.trace.step_records
    assert (chunked_streams.get("step_time").bit_generator.state
            == fast_streams.get("step_time").bit_generator.state)
    assert fast_session.fast_forward_chunks > 0


def test_fast_forward_env_switch(resnet32_profile, monkeypatch):
    monkeypatch.setenv(FASTFORWARD_ENV, "0")
    session, _, _ = _run_session(resnet32_profile, fast_forward=None, steps=400)
    assert not session.fast_forward_enabled
    monkeypatch.setenv(FASTFORWARD_ENV, "1")
    session, _, _ = _run_session(resnet32_profile, fast_forward=None, steps=400)
    assert session.fast_forward_enabled
    assert session.fast_forward_chunks > 0


def test_derived_statistics_identical(resnet32_profile):
    _, chunked, _ = _run_session(resnet32_profile, fast_forward=False, steps=3000)
    _, fast, _ = _run_session(resnet32_profile, fast_forward=True, steps=3000)
    assert chunked.cluster_speed() == fast.cluster_speed()
    assert chunked.speed_series() == fast.speed_series()
    assert chunked.summary() == fast.summary()
    for worker_id in chunked.worker_ids():
        assert np.array_equal(chunked.worker_step_times(worker_id),
                              fast.worker_step_times(worker_id))


# ---------------------------------------------------------------------------
# StepTimeModel.sample_steps: the vector draw underpinning the fast path.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("start,count,utilization,slowdown", [
    (0, 250, 0.0, 1.0),      # spans the whole warm-up transient
    (37, 80, 0.3, 1.7),      # starts mid-warm-up, contended, slowed
    (95, 5, 0.0, 2.5),       # entirely inside the warm-up tail
    (100, 400, 1.2, 1.0),    # post-warm-up constant-mean block
    (10_000, 1, 0.0, 1.0),   # single-draw degenerate case
])
def test_sample_steps_bit_identical_to_scalar_draws(start, count, utilization,
                                                    slowdown):
    scalar_model = StepTimeModel(rng=np.random.default_rng(99))
    vector_model = StepTimeModel(rng=np.random.default_rng(99))
    scalar = np.array([
        scalar_model.sample_step_time(1.54, "k80", step_index=start + i,
                                      ps_utilization=utilization,
                                      slowdown=slowdown)
        for i in range(count)])
    vector = vector_model.sample_steps(1.54, "k80", count, start_step_index=start,
                                       ps_utilization=utilization,
                                       slowdown=slowdown)
    assert np.array_equal(scalar, vector)
    assert (scalar_model._rng.bit_generator.state
            == vector_model._rng.bit_generator.state)


def test_sample_steps_validation():
    from repro.errors import ConfigurationError

    model = StepTimeModel()
    assert model.sample_steps(1.0, "k80", 0).shape == (0,)
    with pytest.raises(ConfigurationError):
        model.sample_steps(1.0, "k80", -1)
    with pytest.raises(ConfigurationError):
        model.sample_steps(1.0, "k80", 5, start_step_index=-1)


# ---------------------------------------------------------------------------
# Serial == parallel == vectorized across the sweep runner.
# ---------------------------------------------------------------------------
def test_campaign_serial_parallel_and_chunked_identical(catalog, monkeypatch):
    """The PR-1 contract (serial == 2-worker parallel) now also covers the
    fast path: chunked serial, vectorized serial, and vectorized parallel
    campaigns all produce identical payloads."""
    kwargs = dict(model_names=("resnet_15",), gpu_names=("k80",), steps=600,
                  seed=11, catalog=catalog)
    monkeypatch.setenv(FASTFORWARD_ENV, "0")
    chunked = run_speed_campaign(**kwargs)
    monkeypatch.setenv(FASTFORWARD_ENV, "1")
    serial = run_speed_campaign(**kwargs)
    parallel = run_speed_campaign(workers=2, **kwargs)
    assert chunked.cells == serial.cells == parallel.cells
    assert chunked.speed_series == serial.speed_series == parallel.speed_series
    assert ([m.step_time for m in chunked.measurements()]
            == [m.step_time for m in serial.measurements()]
            == [m.step_time for m in parallel.measurements()])
