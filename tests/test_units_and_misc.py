"""Tests for unit helpers and miscellaneous behaviours not covered elsewhere."""

import pytest

from repro import __version__
from repro import units
from repro.cloud.storage import CloudStorage
from repro.cmdare.experiment import run_training_experiment
from repro.cmdare.resource_manager import ResourceManager
from repro.cloud.provider import SimulatedCloudProvider
from repro.errors import ConfigurationError, ReproError, UnknownGPUError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job


def test_version_is_exposed():
    assert isinstance(__version__, str)
    assert __version__.count(".") == 2


def test_time_conversions():
    assert units.seconds_to_ms(1.5) == pytest.approx(1500.0)
    assert units.ms_to_seconds(250.0) == pytest.approx(0.25)
    assert units.hours_to_seconds(2.0) == pytest.approx(7200.0)
    assert units.seconds_to_hours(1800.0) == pytest.approx(0.5)
    assert units.DAY == 24 * units.HOUR


def test_size_conversions():
    assert units.bytes_to_mb(units.MB) == pytest.approx(1.0)
    assert units.mb_to_bytes(2.0) == pytest.approx(2 * 1024 * 1024)
    assert units.GB == 1024 * units.MB


def test_flops_conversions():
    assert units.flops_to_gflops(units.GIGAFLOP) == pytest.approx(1.0)
    assert units.gflops_to_flops(1.54) == pytest.approx(1.54e9)
    assert units.flops_to_teraflops(units.teraflops_to_flops(4.11)) == pytest.approx(4.11)


def test_exception_hierarchy():
    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(UnknownGPUError, ConfigurationError)
    error = UnknownGPUError("tpu", known=("k80",))
    assert "tpu" in str(error) and "k80" in str(error)


def test_experiment_with_storage_uploads_checkpoints(resnet32_profile):
    job = measurement_job(resnet32_profile, steps=400, checkpointing=True,
                          checkpoint_interval_steps=100)
    result = run_training_experiment(ClusterSpec.single("k80"), job, seed=1,
                                     with_storage=True, with_controller=False)
    assert result.session.storage is not None
    assert len(result.session.storage.list_objects("checkpoints/")) >= 3


def test_resource_manager_validate_spec():
    provider = SimulatedCloudProvider(Simulator(), streams=RandomStreams(0))
    manager = ResourceManager(provider)
    manager.validate_spec(ClusterSpec.from_counts(v100=1, region_name="us-central1"))


def test_storage_checkpoint_keys_are_per_model(resnet15_profile, resnet32_profile):
    storage = CloudStorage("us-east1")
    storage.put("checkpoints/resnet_15/model.ckpt-100", 100, at_time=1.0)
    storage.put("checkpoints/resnet_32/model.ckpt-100", 200, at_time=2.0)
    assert len(storage.list_objects("checkpoints/resnet_15/")) == 1
    assert storage.latest("checkpoints/").size_bytes == 200


def test_trace_records_worker_steps_monotonically(resnet15_profile):
    from repro.training.session import TrainingSession

    session = TrainingSession(Simulator(), ClusterSpec.single("k80"),
                              measurement_job(resnet15_profile, steps=300),
                              streams=RandomStreams(2))
    trace = session.run_to_completion()
    per_worker = [r.worker_step for r in trace.step_records
                  if r.worker_id == "worker-0"]
    assert per_worker == sorted(per_worker)
    assert per_worker[-1] >= 300
