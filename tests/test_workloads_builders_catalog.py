"""Tests for the ResNet/Shake-Shake builders and the twenty-model catalog."""

import pytest

from repro.errors import ConfigurationError, UnknownModelError
from repro.workloads.catalog import (
    NAMED_MODELS,
    PAPER_MODEL_GFLOPS,
    default_catalog,
)
from repro.workloads.profiler import profile_model
from repro.workloads.resnet import build_resnet, build_resnet_15, build_resnet_32
from repro.workloads.shake_shake import (
    build_shake_shake,
    build_shake_shake_big,
    build_shake_shake_small,
)


def test_resnet_depths_map_to_blocks():
    assert build_resnet(depth=15, base_width=16).name == "resnet_15"
    assert build_resnet(depth=32, base_width=16).name == "resnet_32"
    with pytest.raises(ConfigurationError):
        build_resnet(depth=17)
    with pytest.raises(ConfigurationError):
        build_resnet(depth=15, base_width=0)


def test_resnet_32_deeper_than_15():
    small = build_resnet_15(base_width=16)
    big = build_resnet_32(base_width=16)
    assert big.num_layers > small.num_layers
    assert big.params > small.params
    assert big.gflops > small.gflops


def test_resnet_width_scaling_is_roughly_quadratic():
    narrow = build_resnet(depth=15, base_width=16)
    wide = build_resnet(depth=15, base_width=32)
    ratio = wide.gflops / narrow.gflops
    assert 3.0 < ratio < 4.5


def test_shake_shake_has_two_branches():
    model = build_shake_shake(depth=26, base_width=32)
    assert model.parallel_branches == 2
    with pytest.raises(ConfigurationError):
        build_shake_shake(depth=27)


def test_shake_shake_big_wider_than_small():
    small = build_shake_shake_small()
    big = build_shake_shake_big()
    assert big.params > small.params
    assert big.gflops > small.gflops


def test_catalog_contains_twenty_models():
    catalog = default_catalog()
    assert len(catalog) == 20
    assert len(catalog.named_models()) == 4
    assert len(catalog.custom_models()) == 16
    assert set(NAMED_MODELS).issubset(set(catalog.names()))


def test_catalog_named_models_match_paper_gflops():
    catalog = default_catalog()
    for name, target in PAPER_MODEL_GFLOPS.items():
        measured = catalog.profile(name).gflops
        assert measured == pytest.approx(target, rel=0.06), name


def test_catalog_spans_a_wide_complexity_range():
    low, high = default_catalog().gflops_range()
    assert low < 0.3
    assert high > 15.0


def test_catalog_lookup_and_errors():
    catalog = default_catalog()
    assert catalog.graph("resnet_32").name == "resnet_32"
    assert "resnet_32" in catalog
    assert "alexnet" not in catalog
    with pytest.raises(UnknownModelError):
        catalog.get("alexnet")


def test_catalog_is_cached():
    assert default_catalog() is default_catalog()


def test_profiles_consistent_with_graphs():
    catalog = default_catalog()
    for entry in catalog:
        fresh = profile_model(entry.graph)
        assert fresh.gflops == pytest.approx(entry.profile.gflops)
        assert fresh.params == entry.profile.params
        assert entry.profile.parameter_bytes == entry.profile.params * 4


def test_custom_models_have_unique_names():
    names = default_catalog().names()
    assert len(names) == len(set(names))
