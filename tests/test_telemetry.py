"""Columnar telemetry export + the online recalibration loop.

Covers the three tentpole contracts of :mod:`repro.telemetry`:

* the spool/npz writer is memory-bounded (fixed-size chunks) and its
  artifact is a pure function of the recorded rows, so a sharded export
  is byte-identical to the single-process export;
* recalibrating on a fleet's *own* telemetry recovers the generating
  parameters within the documented tolerances (self-consistency);
* the placement service's ``recalibrate`` op swaps the refit calibration
  in atomically — cache dropped, epoch bumped, decisions change.
"""

import asyncio
import hashlib
import json
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.modeling.placement import PlacementQuery
from repro.scenarios.catalog import get_scenario
from repro.serve.service import PlacementService
from repro.serve.transport import handle_request
from repro.telemetry import (
    RECOVERY_TOLERANCES,
    RecalibrationResult,
    TelemetryConfig,
    TelemetryReader,
    TelemetrySpool,
    calibration_scenario,
    check_recovery,
    export_fleet_telemetry,
    recalibrate,
    write_npz,
)
from repro.telemetry.cli import main as telemetry_cli
from repro.telemetry.writer import DRAW_COLUMNS, STEP_COLUMNS

#: The self-consistency fleet: 240 jobs per (gpu, region) cell was
#: validated across seeds to land inside RECOVERY_TOLERANCES; seed 3 is
#: the committed test point (worst weibull rel err 0.27 vs 0.35 allowed).
SELFTEST_JOBS_PER_CELL = 240
SELFTEST_SEED = 3


def _sha256(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _outcome(revoked, lifetime=None, hour=None):
    return SimpleNamespace(revoked=revoked, lifetime_hours=lifetime,
                           revocation_hour_local=hour)


# ---------------------------------------------------------------------------
# Spool writer + reader round trip.
# ---------------------------------------------------------------------------
def test_spool_round_trip(tmp_path):
    spool_dir = str(tmp_path / "spool")
    out_path = str(tmp_path / "telemetry.npz")
    os.makedirs(spool_dir)
    with TelemetrySpool(TelemetryConfig(spool_dir=spool_dir,
                                        chunk_rows=4)) as spool:
        job = spool.job(0, "job-a", "resnet_32", 1.56)
        job.register_worker("worker-0", "k80", "us-east1")
        sink = job.step_sink()
        for index in range(10):
            sink.append_row("worker-0", float(index), index + 0.5,
                            10, 10 * (index + 1), 10 * (index + 1))
        job.record_draw("worker-0", 7.0, _outcome(True, 3.25, 10.25))
        job.record_draw("worker-0", 8.0, _outcome(False))
    # chunk_rows=4 over 10 rows: two full chunks + one partial at close.
    chunks = [name for name in os.listdir(spool_dir) if "__steps__" in name]
    assert len(chunks) == 3
    write_npz(spool_dir, out_path, {"scenario": "unit", "jobs": []})

    with TelemetryReader(out_path) as reader:
        assert reader.ranks == [0]
        ids, gpus, regions = reader.workers(0)
        assert list(ids) == ["worker-0"]
        assert list(gpus) == ["k80"] and list(regions) == ["us-east1"]
        steps = reader.step_rows(0)
        assert steps.shape == (10, len(STEP_COLUMNS))
        assert steps[:, 1].tolist() == [float(i) for i in range(10)]
        assert steps[-1, 4] == 100.0
        draws = reader.draw_rows(0)
        assert draws.shape == (2, len(DRAW_COLUMNS))
        assert draws[0, 2] == 1.0 and draws[0, 3] == 3.25
        assert draws[1, 2] == 0.0 and np.isnan(draws[1, 3])


def test_spool_unregistered_worker_gets_anonymous_slot(tmp_path):
    spool_dir = str(tmp_path / "spool")
    os.makedirs(spool_dir)
    with TelemetrySpool(TelemetryConfig(spool_dir=spool_dir)) as spool:
        job = spool.job(0, "job-a", "resnet_15", 0.589)
        job.step_sink().append_row("session-restart", 0.0, 1.0, 0, 0, 0)
        ids = job._worker_ids
        assert ids == ["session-restart"]
        assert job._worker_gpus == [""]


def test_reader_rejects_unknown_format(tmp_path, monkeypatch):
    # write_npz always stamps the current version, so forge the artifact.
    out_path = str(tmp_path / "bad.npz")
    np.savez(out_path, meta=np.array(json.dumps({"format_version": 99}),
                                     dtype=np.str_))
    # Capture the NpzFile the constructor opens: a rejected artifact must
    # close it instead of leaking the zip handle with the exception.
    opened = []
    real_load = np.load

    def capture_load(*args, **kwargs):
        npz = real_load(*args, **kwargs)
        opened.append(npz)
        return npz

    monkeypatch.setattr(np, "load", capture_load)
    with pytest.raises(DataError, match="format version"):
        TelemetryReader(out_path)
    not_telemetry = str(tmp_path / "plain.npz")
    np.savez(not_telemetry, rows=np.zeros(3))
    with pytest.raises(DataError, match="no meta entry"):
        TelemetryReader(not_telemetry)
    assert len(opened) == 2
    assert all(npz.zip is None and npz.fid is None for npz in opened)


def test_reader_wraps_unreadable_paths_in_data_error(tmp_path):
    # Missing files and non-npz bytes surface as DataError so the CLIs
    # print a clean "error:" line instead of a traceback.
    with pytest.raises(DataError, match="cannot open telemetry artifact"):
        TelemetryReader(str(tmp_path / "missing.npz"))
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"this is not a zip archive")
    with pytest.raises(DataError, match="cannot open telemetry artifact"):
        TelemetryReader(str(garbage))


def test_reader_job_meta_indexed_by_rank(tmp_path):
    spool_dir = str(tmp_path / "spool")
    out_path = str(tmp_path / "meta.npz")
    os.makedirs(spool_dir)
    with TelemetrySpool(TelemetryConfig(spool_dir=spool_dir)) as spool:
        spool.job(5, "job-five", "resnet_32", 1.56)
    # meta jobs deliberately unsorted: lookup must go by rank, not order.
    write_npz(spool_dir, out_path, {"scenario": "unit", "jobs": [
        {"rank": 7, "name": "job-seven"}, {"rank": 5, "name": "job-five"}]})
    with TelemetryReader(out_path) as reader:
        assert reader.job_meta(5)["name"] == "job-five"
        assert reader.job_meta(7)["name"] == "job-seven"
        with pytest.raises(DataError, match="rank 3"):
            reader.job_meta(3)


def test_reader_chunk_iterators_match_materialized(tmp_path):
    spool_dir = str(tmp_path / "spool")
    out_path = str(tmp_path / "chunks.npz")
    os.makedirs(spool_dir)
    with TelemetrySpool(TelemetryConfig(spool_dir=spool_dir,
                                        chunk_rows=4)) as spool:
        job = spool.job(0, "job-a", "resnet_15", 0.589)
        job.register_worker("worker-0", "k80", "us-east1")
        sink = job.step_sink()
        for index in range(11):
            sink.append_row("worker-0", float(index), index + 0.5,
                            10, 10 * (index + 1), 10 * (index + 1))
        for _ in range(6):
            job.record_draw("worker-0", 1.0, _outcome(False))
    write_npz(spool_dir, out_path, {"scenario": "unit", "jobs": []})
    with TelemetryReader(out_path) as reader:
        # Partial final chunks: 11 steps -> 4/4/3, 6 draws -> 4/2.
        step_chunks = list(reader.step_chunks(0))
        assert [len(chunk) for chunk in step_chunks] == [4, 4, 3]
        draw_chunks = list(reader.draw_chunks(0))
        assert [len(chunk) for chunk in draw_chunks] == [4, 2]
        np.testing.assert_array_equal(np.concatenate(step_chunks),
                                      reader.step_rows(0))
        np.testing.assert_array_equal(np.concatenate(draw_chunks),
                                      reader.draw_rows(0))
        # A rank with no recorded rows streams nothing and materializes
        # empty-but-shaped tables.
        assert list(reader.step_chunks(42)) == []
        assert reader.step_rows(42).shape == (0, len(STEP_COLUMNS))
        assert reader.draw_rows(42).shape == (0, len(DRAW_COLUMNS))


# ---------------------------------------------------------------------------
# Export identity: sharded == single-process, byte for byte.
# ---------------------------------------------------------------------------
def test_export_bit_identical_across_shards_and_trace_level(tmp_path):
    scenario = get_scenario("multi_region_hetero")
    digests = {}
    payloads = {}
    for label, kwargs in (
            ("single", {"shards": 1}),
            ("sharded", {"shards": 2}),
            ("summary", {"shards": 2, "trace_level": "summary"})):
        path = str(tmp_path / f"{label}.npz")
        payloads[label] = export_fleet_telemetry(scenario, path, seed=1,
                                                 **kwargs)
        digests[label] = _sha256(path)
    assert digests["single"] == digests["sharded"] == digests["summary"]
    assert payloads["single"] == payloads["sharded"] == payloads["summary"]
    # No spool directories left behind.
    assert not [name for name in os.listdir(tmp_path) if name.endswith(".spool")]


# ---------------------------------------------------------------------------
# Self-consistency: refit on the fleet's own telemetry recovers the
# generating parameters within RECOVERY_TOLERANCES.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def calibration_refit(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("telemetry") / "calibration.npz")
    export_fleet_telemetry(
        calibration_scenario(jobs_per_cell=SELFTEST_JOBS_PER_CELL),
        path, seed=SELFTEST_SEED)
    with TelemetryReader(path) as reader:
        return recalibrate(reader)


def test_recalibration_recovers_generating_parameters(calibration_refit):
    violations = check_recovery(calibration_refit)
    assert violations == []


def test_recalibration_anchors_match_step_time_table(calibration_refit):
    from repro.perf.calibration import STEP_TIME_ANCHORS
    # Refit anchors sit at the catalog's exact per-model gflops, which
    # differ slightly from the paper-table anchor grid — compare against
    # the reference curve interpolated at the refit abscissa.
    for gpu, refit_points in calibration_refit.anchors.items():
        xs, ys = zip(*sorted(STEP_TIME_ANCHORS[gpu]))
        for gflops, seconds in refit_points:
            expected = float(np.interp(gflops, xs, ys))
            assert seconds == pytest.approx(
                expected, rel=RECOVERY_TOLERANCES["anchor_rel"])


def test_recalibration_result_round_trips_through_params(calibration_refit):
    document = calibration_refit.to_params()
    json.dumps(document)  # must be JSON-encodable as-is
    restored = RecalibrationResult.from_params(document)
    assert restored.calibration == calibration_refit.calibration
    assert restored.hourly_weights == calibration_refit.hourly_weights
    assert restored.anchors == calibration_refit.anchors
    assert restored.noise_cov == calibration_refit.noise_cov


def test_recalibration_models_merge_over_defaults(calibration_refit):
    from repro.cloud.revocation import REVOCATION_CALIBRATION
    model = calibration_refit.revocation_model()
    # Observed cells are replaced, unobserved cells keep the stock values.
    observed = set(calibration_refit.calibration)
    for cell, params in model._calibration.items():
        if cell in observed:
            assert params == calibration_refit.calibration[cell]
        else:
            assert params == REVOCATION_CALIBRATION[cell]
    calibration_refit.step_time_model()  # anchors valid for every GPU


def test_calibration_scenario_validation():
    with pytest.raises(ConfigurationError):
        calibration_scenario(jobs_per_cell=1)
    with pytest.raises(ConfigurationError):
        calibration_scenario(total_steps=150)
    with pytest.raises(ConfigurationError):
        calibration_scenario(stagger_hours=-1.0)


# ---------------------------------------------------------------------------
# Serve: the recalibrate op.
# ---------------------------------------------------------------------------
def _perturbed_result():
    from repro.cloud.revocation import RevocationCellParams
    return RecalibrationResult(
        calibration={("k80", "us-east1"): RevocationCellParams(0.6, 1.2, 6.0)},
        hourly_weights={"k80": tuple([1.0] * 24)})


def test_service_recalibrate_swaps_advisor_and_drops_cache():
    service = PlacementService(samples_per_option=50)
    query = PlacementQuery(gpu_name="k80", duration_hours=8.0,
                           hour_of_day_utc=3.0)
    before = service.answer_now(query)
    summary = service.recalibrate(_perturbed_result())
    assert summary["calibration_epoch"] == 1
    stats = service.stats()
    assert stats["recalibrations"] == 1
    assert stats["calibration_epoch"] == 1
    assert stats["cached_decisions"] == 0
    assert stats["cache_invalidations"] == 1
    after = service.answer_now(query)
    # The refit makes us-east1 K80s much worse; the decision must move.
    assert after.to_params() != before.to_params()


def test_transport_recalibrate_op():
    service = PlacementService(samples_per_option=50)
    document = {"op": "recalibrate",
                "calibration": _perturbed_result().to_params()}
    result = asyncio.run(handle_request(service, document))
    assert result["calibration_epoch"] == 1
    assert result["cells_refit"] == 1
    with pytest.raises(Exception, match="recalibrate requires"):
        asyncio.run(handle_request(service, {"op": "recalibrate"}))
    with pytest.raises(Exception, match="recalibrate"):
        asyncio.run(handle_request(service, {"op": "bogus"}))


# ---------------------------------------------------------------------------
# CLI: export + recalibrate subcommands.
# ---------------------------------------------------------------------------
def test_cli_export_then_recalibrate(tmp_path, capsys):
    artifact = str(tmp_path / "cal.npz")
    refit_json = str(tmp_path / "refit.json")
    assert telemetry_cli(["export", "telemetry_calibration",
                          "--jobs-per-cell", "4", "--out", artifact,
                          "--seed", "1"]) == 0
    assert "exported telemetry for 24 jobs" in capsys.readouterr().out
    assert telemetry_cli(["recalibrate", artifact,
                          "--json", refit_json]) == 0
    with open(refit_json, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    # 24 jobs is far below min_cell_draws: no revocation cells refit, but
    # the step-time anchors still recover from the step chunks.
    assert document["calibration"] == {}
    assert set(document["anchors"]) == {"k80", "p100", "v100"}


def test_cli_rejects_unknown_scenario(tmp_path, capsys):
    status = telemetry_cli(["export", "nope",
                            "--out", str(tmp_path / "x.npz")])
    assert status == 1
    assert "unknown scenario" in capsys.readouterr().err
