"""Tests for the GPU and region catalogs."""

import pytest

from repro.cloud.gpus import GPU_CATALOG, get_gpu, list_gpus
from repro.cloud.regions import (
    REGION_CATALOG,
    get_region,
    list_regions,
    regions_offering,
)
from repro.errors import UnknownGPUError, UnknownRegionError


def test_catalog_has_the_three_paper_gpus():
    assert set(GPU_CATALOG) == {"k80", "p100", "v100"}


def test_gpu_capacities_match_the_paper():
    assert get_gpu("k80").teraflops == pytest.approx(4.11)
    assert get_gpu("p100").teraflops == pytest.approx(9.53)
    assert get_gpu("v100").teraflops == pytest.approx(14.13)


def test_gpu_memory_matches_the_paper():
    assert get_gpu("k80").memory_gb == 12
    assert get_gpu("p100").memory_gb == 16
    assert get_gpu("v100").memory_gb == 16


def test_gpu_lookup_is_case_insensitive():
    assert get_gpu("K80") is get_gpu("k80")


def test_unknown_gpu_raises_with_known_names():
    with pytest.raises(UnknownGPUError) as excinfo:
        get_gpu("a100")
    assert "k80" in str(excinfo.value)


def test_list_gpus_sorted_by_capacity():
    names = [gpu.name for gpu in list_gpus()]
    assert names == ["k80", "p100", "v100"]


def test_gpu_flops_property():
    assert get_gpu("k80").flops == pytest.approx(4.11e12)


def test_fits_model_for_reasonable_sizes():
    gpu = get_gpu("k80")
    assert gpu.fits_model(parameter_bytes=100 * 1024 * 1024)
    assert not gpu.fits_model(parameter_bytes=4 * 1024 ** 3)


def test_six_regions_exist():
    assert len(REGION_CATALOG) == 6
    assert set(REGION_CATALOG) == {"us-east1", "us-central1", "us-west1",
                                   "europe-west1", "europe-west4", "asia-east1"}


def test_region_gpu_availability_matches_table5():
    assert get_region("us-east1").offers("k80")
    assert get_region("us-east1").offers("p100")
    assert not get_region("us-east1").offers("v100")
    assert get_region("europe-west4").offers("v100")
    assert not get_region("europe-west4").offers("k80")
    assert get_region("asia-east1").gpu_types == ("v100",)


def test_unknown_region_raises():
    with pytest.raises(UnknownRegionError):
        get_region("mars-north1")


def test_regions_offering_each_gpu():
    assert {r.name for r in regions_offering("v100")} == {"us-central1", "us-west1",
                                                          "europe-west4", "asia-east1"}
    assert len(regions_offering("k80")) == 4


def test_local_hour_conversion():
    region = get_region("us-west1")  # UTC-8
    assert region.local_hour(10.0) == pytest.approx(2.0)
    assert region.local_hour(3.0) == pytest.approx(19.0)


def test_list_regions_returns_all():
    assert len(list_regions()) == 6
