"""Tests for the instance lifecycle and the simulated provider."""

import pytest

from repro.cloud.instance import InstanceState, ServerClass
from repro.cloud.provider import (
    InstanceRequest,
    SimulatedCloudProvider,
    make_ps_request,
    make_worker_request,
)
from repro.cloud.machines import gpu_worker_machine
from repro.errors import CapacityError, ConfigurationError, InstanceStateError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams


@pytest.fixture()
def provider():
    simulator = Simulator()
    return SimulatedCloudProvider(simulator, streams=RandomStreams(seed=3))


def test_requested_instance_walks_through_lifecycle(provider):
    running = []
    request = make_worker_request("k80", "us-east1", transient=False,
                                  on_running=lambda inst: running.append(inst))
    instance = provider.request_instance(request)
    assert instance.state is InstanceState.REQUESTED
    provider.simulator.run()
    assert instance.state is InstanceState.RUNNING
    assert running == [instance]
    assert instance.running_since() == pytest.approx(instance.startup.total)


def test_startup_duration_matches_stages(provider):
    instance = provider.request_instance(make_worker_request("p100", "us-east1"))
    expected = (instance.startup.provisioning + instance.startup.staging
                + instance.startup.booting)
    assert instance.startup_duration() == pytest.approx(expected)


def test_transient_worker_gets_revocation_scheduled(provider):
    revoked = []
    request = make_worker_request("p100", "us-east1", transient=True,
                                  on_revoked=lambda inst: revoked.append(inst))
    instance = provider.request_instance(request)
    provider.simulator.run()
    # After the full run (24h horizon) the instance is either revoked or was
    # reclaimed at the 24-hour maximum lifetime; both show up as REVOKED.
    assert instance.state is InstanceState.REVOKED
    assert revoked == [instance]
    assert "planned_lifetime_hours" in instance.labels


def test_on_demand_server_never_revoked(provider):
    instance = provider.request_instance(make_ps_request("us-east1"))
    provider.simulator.run()
    assert instance.state is InstanceState.RUNNING
    assert instance.server_class is ServerClass.ON_DEMAND


def test_terminate_instance(provider):
    instance = provider.request_instance(make_worker_request("k80", "us-east1"))
    provider.simulator.run(until=instance.startup.total + 1)
    provider.terminate_instance(instance.instance_id)
    assert instance.state is InstanceState.TERMINATED
    # Termination is idempotent.
    provider.terminate_instance(instance.instance_id)
    assert instance.state is InstanceState.TERMINATED


def test_unknown_region_gpu_combination_rejected(provider):
    with pytest.raises(ConfigurationError):
        provider.request_instance(make_worker_request("v100", "us-east1"))


def test_quota_enforced():
    simulator = Simulator()
    provider = SimulatedCloudProvider(simulator, streams=RandomStreams(seed=1),
                                      gpu_quota=2)
    provider.request_instance(make_worker_request("k80", "us-east1"))
    provider.request_instance(make_worker_request("k80", "us-east1"))
    with pytest.raises(CapacityError):
        provider.request_instance(make_worker_request("k80", "us-east1"))
    # A different GPU type has its own quota.
    provider.request_instance(make_worker_request("p100", "us-east1"))


def test_cost_accrues_with_time(provider):
    instance = provider.request_instance(make_worker_request("k80", "us-east1"))
    provider.simulator.run(until=instance.startup.total + 3600.0)
    provider.terminate_instance(instance.instance_id)
    cost = provider.instance_cost(instance.instance_id)
    assert cost > 0.0
    assert provider.total_cost() >= cost
    breakdown = provider.cost_breakdown()
    assert ("us-east1", "transient") in breakdown


def test_get_instance_unknown_id(provider):
    with pytest.raises(InstanceStateError):
        provider.get_instance("i-does-not-exist")


def test_illegal_transition_rejected(provider):
    instance = provider.request_instance(make_worker_request("k80", "us-east1"))
    provider.simulator.run()
    with pytest.raises(InstanceStateError):
        instance.transition(InstanceState.PROVISIONING, provider.simulator.now)


def test_alive_instances_filtering(provider):
    a = provider.request_instance(make_worker_request("k80", "us-east1"))
    b = provider.request_instance(make_worker_request("p100", "us-east1"))
    assert len(provider.alive_instances()) == 2
    assert provider.alive_instances(gpu_name="k80") == [a]
    provider.terminate_instance(a.instance_id)
    assert provider.alive_instances() == [b]


def test_terminate_all(provider):
    provider.request_instance(make_worker_request("k80", "us-east1"))
    provider.request_instance(make_ps_request("us-east1"))
    provider.terminate_all()
    assert provider.alive_instances() == []


def test_uptime_and_billed_duration(provider):
    instance = provider.request_instance(make_worker_request("k80", "us-east1",
                                                             transient=False))
    provider.simulator.run(until=instance.startup.total + 100.0)
    assert instance.uptime(provider.simulator.now) == pytest.approx(100.0, abs=1.0)
    assert instance.billed_duration(provider.simulator.now) > instance.uptime(
        provider.simulator.now)


def test_invalid_quota_rejected():
    with pytest.raises(ConfigurationError):
        SimulatedCloudProvider(Simulator(), gpu_quota=0)


def test_request_preserves_labels(provider):
    request = InstanceRequest(region_name="us-east1",
                              machine=gpu_worker_machine("k80"),
                              labels={"role": "worker", "name": "worker-3"})
    instance = provider.request_instance(request)
    assert instance.labels["role"] == "worker"
    assert instance.labels["name"] == "worker-3"
