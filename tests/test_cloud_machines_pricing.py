"""Tests for machine types and the pricing catalog."""

import pytest

from repro.cloud.machines import (
    GPU_WORKER_MACHINE,
    PARAMETER_SERVER_MACHINE,
    MachineType,
    gpu_worker_machine,
)
from repro.cloud.pricing import PricePair, default_price_catalog
from repro.errors import ConfigurationError, UnknownGPUError


def test_paper_machine_shapes():
    assert PARAMETER_SERVER_MACHINE.vcpus == 4
    assert PARAMETER_SERVER_MACHINE.memory_gb == 16
    assert not PARAMETER_SERVER_MACHINE.has_gpu
    assert GPU_WORKER_MACHINE.vcpus == 4
    assert GPU_WORKER_MACHINE.memory_gb == 52


def test_gpu_worker_machine_attaches_gpu():
    machine = gpu_worker_machine("p100")
    assert machine.has_gpu
    assert machine.gpu_name == "p100"
    assert machine.gpu_count == 1


def test_machine_validation():
    with pytest.raises(ConfigurationError):
        MachineType(name="bad", vcpus=0, memory_gb=8)
    with pytest.raises(ConfigurationError):
        MachineType(name="bad", vcpus=4, memory_gb=8, gpu_name="k80", gpu_count=0)


def test_price_pair_discount():
    pair = PricePair(on_demand=1.0, preemptible=0.3)
    assert pair.discount == pytest.approx(0.7)
    assert pair.price(transient=True) == pytest.approx(0.3)
    assert pair.price(transient=False) == pytest.approx(1.0)


def test_transient_gpus_are_cheaper():
    catalog = default_price_catalog()
    for gpu in ("k80", "p100", "v100"):
        assert catalog.gpu_price(gpu, transient=True) < catalog.gpu_price(gpu, transient=False)
        assert catalog.transient_discount(gpu) > 0.5


def test_more_powerful_gpus_cost_more():
    catalog = default_price_catalog()
    assert (catalog.gpu_price("k80", False) < catalog.gpu_price("p100", False)
            < catalog.gpu_price("v100", False))


def test_machine_hourly_price_includes_gpu():
    catalog = default_price_catalog()
    cpu_only = catalog.machine_hourly_price(PARAMETER_SERVER_MACHINE, transient=False)
    with_gpu = catalog.machine_hourly_price(gpu_worker_machine("v100"), transient=False)
    assert with_gpu > cpu_only
    assert with_gpu > catalog.gpu_price("v100", transient=False)


def test_cost_is_per_second():
    catalog = default_price_catalog()
    machine = gpu_worker_machine("k80")
    hourly = catalog.machine_hourly_price(machine, transient=True)
    assert catalog.cost(machine, True, 3600.0) == pytest.approx(hourly)
    assert catalog.cost(machine, True, 1800.0) == pytest.approx(hourly / 2)
    assert catalog.cost(machine, True, 0.0) == 0.0


def test_cost_rejects_negative_duration():
    catalog = default_price_catalog()
    with pytest.raises(ConfigurationError):
        catalog.cost(GPU_WORKER_MACHINE, True, -1.0)


def test_unknown_gpu_price_raises():
    catalog = default_price_catalog()
    with pytest.raises(UnknownGPUError):
        catalog.gpu_price("tpu", transient=True)
