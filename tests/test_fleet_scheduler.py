"""Golden-payload and stress tests for the fleet wake-set scheduler.

The wake-set scheduler (PR 4) must reproduce the round-robin reference's
payloads bit for bit, across every named scenario, both simulation core
paths, and any sweep worker count; a 100-job fleet must respect the
``MAX_EVENTS_PER_JOB`` guard and leave a drainable heap behind.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.scenarios import get_scenario, run_fleet, run_scenario
from repro.scenarios import fleet as fleet_module
from repro.scenarios.fleet import FleetRun
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.rng import RandomStreams

SCENARIOS = ("single_region_k80", "multi_region_hetero", "revocation_storm",
             "capacity_crunch", "warm_reuse", "adaptive_placement")


def scaled_storm(jobs, total_steps=1500):
    """revocation_storm scaled to ``jobs`` jobs (small steps for tests)."""
    specs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=total_steps,
                workers=(("k80", "europe-west1"),) * 3,
                checkpoint_interval_steps=4000, queue_replacements=True)
        for index in range(jobs))
    return ScenarioSpec(name=f"storm_x{jobs}",
                        description=f"storm scaled to {jobs} jobs",
                        jobs=specs,
                        pool_capacity={("k80", "europe-west1"): 4 * jobs},
                        reclaim_seconds=1200.0, epoch_hour_utc=8.5)


# ---------------------------------------------------------------------------
# Golden payload matrix: scheduler x core path (x trace level).
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", SCENARIOS)
def test_golden_payloads_across_scheduler_and_core_path(name, catalog):
    scenario = get_scenario(name)

    def fleet(**kwargs):
        return run_fleet(scenario, RandomStreams(seed=5), catalog=catalog,
                         **kwargs)

    reference = fleet(scheduler="wakeset")
    assert fleet(scheduler="roundrobin") == reference
    assert fleet(scheduler="wakeset", fast_forward=False) == reference
    assert fleet(scheduler="roundrobin", fast_forward=False) == reference
    assert fleet(scheduler="wakeset", trace_level="summary") == reference


# ---------------------------------------------------------------------------
# Golden payload matrix: scheduler x sweep worker count.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", SCENARIOS)
def test_golden_payloads_across_sweep_workers(name, catalog, monkeypatch):
    scenario = get_scenario(name)
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", "wakeset")
    serial = run_scenario(scenario, replicates=2, seed=9, workers=1,
                          catalog=catalog)
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", "roundrobin")
    parallel = run_scenario(scenario, replicates=2, seed=9, workers=4,
                            catalog=catalog)
    assert parallel.payloads() == serial.payloads()


# ---------------------------------------------------------------------------
# Scheduler selection and validation.
# ---------------------------------------------------------------------------
def test_scheduler_env_and_validation(catalog, monkeypatch):
    scenario = scaled_storm(2, total_steps=400)
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", "roundrobin")
    run = FleetRun(scenario, RandomStreams(seed=0), catalog=catalog)
    assert run.scheduler == "roundrobin"
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", "wakeset")
    assert FleetRun(scenario, RandomStreams(seed=0),
                    catalog=catalog).scheduler == "wakeset"
    with pytest.raises(ConfigurationError):
        FleetRun(scenario, RandomStreams(seed=0), catalog=catalog,
                 scheduler="no-such-scheduler")
    with pytest.raises(ConfigurationError):
        FleetRun(scenario, RandomStreams(seed=0), catalog=catalog,
                 trace_level="no-such-level")


# ---------------------------------------------------------------------------
# 100-job stress: guard trips, heap drains.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ("wakeset", "roundrobin"))
def test_max_events_guard_trips(scheduler, catalog, monkeypatch):
    monkeypatch.setattr(fleet_module, "MAX_EVENTS_PER_JOB", 3)
    run = FleetRun(scaled_storm(4, total_steps=2000), RandomStreams(seed=0),
                   catalog=catalog, scheduler=scheduler)
    with pytest.raises(SimulationError, match="exceeded"):
        run.run()


def test_100_job_fleet_completes_and_heap_drains(catalog):
    run = FleetRun(scaled_storm(100, total_steps=1200), RandomStreams(seed=0),
                   catalog=catalog, scheduler="wakeset")
    payload = run.run()
    assert payload["jobs_total"] == 100
    assert payload["jobs_completed"] + payload["jobs_stalled"] == 100
    assert run.events_processed > 0
    snapshot = [(job["completed"], job["stalled"], job["steps_done"])
                for job in payload["jobs"]]
    # Events left behind at the stop point (stale revocation draws, pool
    # reclaim returns, 24h horizons) must all be inert: draining the heap
    # terminates, empties it completely, and revives nothing.
    run.simulator.run()
    assert run.simulator.pending_events() == 0
    after = run._payload()
    assert [(job["completed"], job["stalled"], job["steps_done"])
            for job in after["jobs"]] == snapshot


def test_trace_level_summary_bounds_fleet_trace_memory(catalog):
    full = FleetRun(scaled_storm(4, total_steps=1500), RandomStreams(seed=2),
                    catalog=catalog, trace_level="full")
    payload_full = full.run()
    summary = FleetRun(scaled_storm(4, total_steps=1500), RandomStreams(seed=2),
                       catalog=catalog, trace_level="summary")
    payload_summary = summary.run()
    assert payload_summary == payload_full
    full_bytes = sum(job.session.trace.step_records.nbytes
                     for job in full.jobs)
    summary_bytes = sum(job.session.trace.step_records.nbytes
                        for job in summary.jobs)
    assert summary_bytes < full_bytes / 10
    # Aggregates survive even though the rows were dropped.
    for job in summary.jobs:
        records = job.session.trace.step_records
        assert len(records) > 0
        assert records.steps_total >= job.spec.total_steps
