"""Tests for the cloud storage model."""

import pytest

from repro.cloud.storage import CloudStorage
from repro.errors import ConfigurationError, DataError


@pytest.fixture()
def bucket():
    return CloudStorage(region_name="us-east1")


def test_put_get_roundtrip(bucket):
    obj = bucket.put("ckpt/model.ckpt-100", 1024, at_time=5.0,
                     metadata={"step": "100"})
    assert bucket.get("ckpt/model.ckpt-100") is obj
    assert obj.metadata["step"] == "100"
    assert bucket.exists("ckpt/model.ckpt-100")
    assert not bucket.exists("ckpt/other")


def test_get_missing_raises(bucket):
    with pytest.raises(DataError):
        bucket.get("missing")


def test_overwrite_replaces_object(bucket):
    bucket.put("k", 10, at_time=1.0)
    bucket.put("k", 20, at_time=2.0)
    assert bucket.get("k").size_bytes == 20
    assert bucket.total_bytes() == 20


def test_list_and_latest(bucket):
    bucket.put("ckpt/a-1", 10, at_time=1.0)
    bucket.put("ckpt/a-2", 10, at_time=3.0)
    bucket.put("other/b", 10, at_time=2.0)
    assert [o.key for o in bucket.list_objects("ckpt/")] == ["ckpt/a-1", "ckpt/a-2"]
    assert bucket.latest("ckpt/").key == "ckpt/a-2"
    assert bucket.latest("nothing/") is None


def test_delete_is_idempotent(bucket):
    bucket.put("k", 10, at_time=1.0)
    bucket.delete("k")
    bucket.delete("k")
    assert not bucket.exists("k")


def test_same_region_transfers_faster(bucket):
    size = 100 * 1024 * 1024
    assert bucket.upload_time(size, "us-east1") < bucket.upload_time(size, "us-west1")
    assert bucket.download_time(size, "us-east1") < bucket.download_time(size, "us-west1")


def test_transfer_time_scales_with_size(bucket):
    small = bucket.upload_time(1024, "us-east1")
    large = bucket.upload_time(1024 * 1024 * 1024, "us-east1")
    assert large > small


def test_negative_sizes_rejected(bucket):
    with pytest.raises(ConfigurationError):
        bucket.upload_time(-1, "us-east1")
    with pytest.raises(ConfigurationError):
        bucket.put("k", -5, at_time=0.0)
