"""Summary-trace fleets: sharded identity and analysis over aggregates.

``trace_level="summary"`` keeps O(1) per-session aggregates instead of
full step rows; the payload contract says the fleet payload is identical
anyway.  These tests pin that contract *under sharding* (``--shards 2``
must match ``--shards 1`` in summary mode, and both must match the golden
full-trace fixture) and show the analysis layer aggregating fleets that
only ever ran in summary mode.
"""

import json
import pathlib

import pytest

from repro.analysis.stats import describe, empirical_cdf, mean_and_std
from repro.scenarios import get_scenario, run_fleet, run_fleet_sharded
from repro.scenarios.fleet import run_scenario
from repro.scenarios.report import fleet_hour_histogram
from repro.simulation.rng import RandomStreams

GOLDEN = (pathlib.Path(__file__).parent / "data"
          / "fleet_golden_multi_region_hetero_seed5.json")


@pytest.fixture(scope="module")
def summary_payloads():
    """multi_region_hetero at summary trace level, shards 1 vs 2."""
    scenario = get_scenario("multi_region_hetero")
    single = run_fleet(scenario, RandomStreams(seed=5), trace_level="summary")
    sharded = run_fleet_sharded(scenario, RandomStreams(seed=5), shards=2,
                                trace_level="summary")
    return single, sharded


def test_summary_sharded_matches_single_process(summary_payloads):
    single, sharded = summary_payloads
    assert sharded == single


def test_summary_sharded_matches_golden_full_trace(summary_payloads):
    _, sharded = summary_payloads
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert sharded == golden


def test_analysis_aggregates_summary_only_fleet(monkeypatch):
    """A fleet that only ever ran in summary mode still feeds analysis."""
    monkeypatch.setenv("REPRO_FLEET_TRACE_LEVEL", "summary")
    scenario = get_scenario("revocation_storm")
    result = run_scenario(scenario, replicates=2, seed=9)
    payloads = result.payloads()
    assert len(payloads) == 2

    # Revocation time-of-day histogram over the replicates (Fig. 9 style).
    histogram = fleet_hour_histogram(payloads)
    assert histogram.shape == (24,)
    assert histogram.sum() == sum(p["revocations"] for p in payloads)

    # Descriptive stats over per-job aggregates present in every payload.
    durations = [job["duration_seconds"]
                 for payload in payloads for job in payload["jobs"]]
    summary = describe(durations)
    assert summary["count"] == sum(len(p["jobs"]) for p in payloads)
    assert summary["min"] <= summary["p50"] <= summary["max"]
    mean, std = mean_and_std(durations)
    assert mean == pytest.approx(summary["mean"])

    # Cost CDF across jobs saturates at one.
    costs = [job["cost_usd"] for payload in payloads for job in payload["jobs"]]
    cdf = empirical_cdf(costs, grid=[max(costs)])
    assert cdf[-1] == pytest.approx(1.0)
