"""Tests for layer descriptors and model graphs."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.graph import ModelGraph
from repro.workloads.layers import (
    Activation,
    BatchNorm,
    Conv2D,
    Dense,
    Pooling,
    Shortcut,
    TRAINING_FLOPS_MULTIPLIER,
)


def test_conv2d_params_and_flops():
    layer = Conv2D(filters=16, kernel_size=3)
    stats = layer.stats((32, 32, 3))
    assert stats.params == 3 * 3 * 3 * 16
    assert stats.forward_flops == pytest.approx(2 * stats.params * 32 * 32)
    assert stats.output_shape == (32, 32, 16)
    assert stats.tensors == 1


def test_conv2d_stride_halves_resolution():
    stats = Conv2D(filters=8, stride=2).stats((32, 32, 4))
    assert stats.output_shape == (16, 16, 8)


def test_conv2d_bias_adds_params_and_tensor():
    without = Conv2D(filters=8, use_bias=False).stats((8, 8, 4))
    with_bias = Conv2D(filters=8, use_bias=True).stats((8, 8, 4))
    assert with_bias.params == without.params + 8
    assert with_bias.tensors == 2


def test_batch_norm_two_tensors():
    stats = BatchNorm().stats((16, 16, 32))
    assert stats.params == 64
    assert stats.tensors == 2
    assert stats.output_shape == (16, 16, 32)


def test_activation_and_pooling_have_no_params():
    assert Activation().stats((8, 8, 16)).params == 0
    assert Pooling().stats((8, 8, 16)).params == 0


def test_global_pooling_collapses_spatial_dims():
    stats = Pooling(global_pool=True).stats((8, 8, 64))
    assert stats.output_shape == (1, 1, 64)


def test_dense_params():
    stats = Dense(units=10).stats((1, 1, 64))
    assert stats.params == 64 * 10 + 10
    assert stats.output_shape == (1, 1, 10)


def test_shortcut_projection_vs_identity():
    identity = Shortcut(filters=16).stats((8, 8, 16))
    projection = Shortcut(filters=32, stride=2, projection=True).stats((8, 8, 16))
    assert identity.params == 0
    assert projection.params == 16 * 32
    assert projection.output_shape == (4, 4, 32)


def test_graph_aggregates_layers():
    graph = ModelGraph(name="tiny", family="test", input_shape=(32, 32, 3))
    graph.add(Conv2D(filters=8)).add(BatchNorm()).add(Activation())
    graph.add(Pooling(global_pool=True)).add(Dense(units=10))
    assert graph.num_layers == 5
    assert graph.params == sum(s.params for s in graph.layer_stats())
    assert graph.training_flops == pytest.approx(
        graph.forward_flops * TRAINING_FLOPS_MULTIPLIER)
    assert graph.gflops > 0
    assert "tiny" in graph.summary()


def test_graph_shape_propagation():
    graph = ModelGraph(name="shapes", family="test", input_shape=(32, 32, 3))
    graph.extend([Conv2D(filters=4, stride=2), Conv2D(filters=8, stride=2)])
    stats = graph.layer_stats()
    assert stats[0].output_shape == (16, 16, 4)
    assert stats[1].output_shape == (8, 8, 8)


def test_parallel_branches_double_cost():
    single = ModelGraph(name="single", family="test", input_shape=(32, 32, 3))
    single.add(Conv2D(filters=8))
    double = ModelGraph(name="double", family="test", input_shape=(32, 32, 3),
                        parallel_branches=2)
    double.add(Conv2D(filters=8))
    assert double.params == 2 * single.params
    assert double.forward_flops == pytest.approx(2 * single.forward_flops)


def test_parameter_bytes_uses_four_bytes_per_param():
    graph = ModelGraph(name="g", family="test", input_shape=(8, 8, 3))
    graph.add(Dense(units=10))
    assert graph.parameter_bytes() == graph.params * 4


def test_invalid_graph_configuration_rejected():
    with pytest.raises(ConfigurationError):
        ModelGraph(name="bad", family="test", input_shape=(0, 32, 3))
    with pytest.raises(ConfigurationError):
        ModelGraph(name="bad", family="test", input_shape=(32, 32, 3),
                   parallel_branches=0)
