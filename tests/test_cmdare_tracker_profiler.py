"""Tests for the performance tracker and the performance profiler."""

import pytest

from repro.cmdare.profiler import (
    CheckpointMeasurement,
    PerformanceProfiler,
    SpeedMeasurement,
)
from repro.cmdare.tracker import PerformanceTracker
from repro.errors import DataError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession


def run_with_tracker(profile, steps=1500, window_seconds=20.0):
    session = TrainingSession(Simulator(), ClusterSpec.single("k80"),
                              measurement_job(profile, steps=steps),
                              streams=RandomStreams(1))
    tracker = PerformanceTracker(session, window_seconds=window_seconds)
    session.start()
    samples = []
    while not session.finished:
        if session.simulator.step() is None:
            break
        sample = tracker.poll()
        if sample is not None:
            samples.append(sample)
    return session, tracker, samples


def test_tracker_emits_windowed_samples(resnet15_profile):
    _session, tracker, samples = run_with_tracker(resnet15_profile)
    assert samples
    assert tracker.samples == samples
    # Post-warm-up windows should measure close to the Table I speed.
    assert samples[-1].speed == pytest.approx(9.46, rel=0.15)
    assert tracker.latest_speed() == samples[-1].speed
    assert tracker.average_speed(last_n_windows=2) > 0


def test_tracker_requires_closed_window(resnet15_profile):
    session = TrainingSession(Simulator(), ClusterSpec.single("k80"),
                              measurement_job(resnet15_profile, steps=200),
                              streams=RandomStreams(0))
    tracker = PerformanceTracker(session)
    with pytest.raises(DataError):
        tracker.latest_speed()
    with pytest.raises(DataError):
        tracker.average_speed()


def test_tracker_window_validation(resnet15_profile):
    session = TrainingSession(Simulator(), ClusterSpec.single("k80"),
                              measurement_job(resnet15_profile, steps=200),
                              streams=RandomStreams(0))
    with pytest.raises(DataError):
        PerformanceTracker(session, window_seconds=0.0)


def test_profiler_records_and_filters():
    profiler = PerformanceProfiler()
    profiler.record_speed(SpeedMeasurement("resnet_15", "k80", 0.59, 4.11, 0.105))
    profiler.record_speed(SpeedMeasurement("resnet_15", "p100", 0.59, 9.53, 0.047))
    profiler.record_speed(SpeedMeasurement("resnet_32", "k80", 1.54, 4.11, 0.219))
    assert profiler.gpus() == ["k80", "p100"]
    assert profiler.models() == ["resnet_15", "resnet_32"]
    assert len(profiler.speed_for(gpu_name="k80")) == 2
    assert len(profiler.speed_for(model_name="resnet_15")) == 2
    mean, std = profiler.mean_step_time("resnet_15", "k80")
    assert mean == pytest.approx(0.105)
    assert std == 0.0


def test_profiler_feature_matrices():
    profiler = PerformanceProfiler()
    for gflops, tflops, step in ((0.59, 4.11, 0.105), (1.54, 4.11, 0.219),
                                 (2.41, 4.11, 0.387)):
        profiler.record_speed(SpeedMeasurement("m", "k80", gflops, tflops, step))
    features, targets, measurements = profiler.speed_feature_matrix("k80")
    assert features.shape == (3, 2)
    assert targets.shape == (3,)
    assert len(measurements) == 3
    with pytest.raises(DataError):
        profiler.speed_feature_matrix("v100")


def test_profiler_checkpoint_handling():
    profiler = PerformanceProfiler()
    profiler.record_checkpoint(CheckpointMeasurement("resnet_32", 40 * 2 ** 20,
                                                     5 * 2 ** 10, 300 * 2 ** 10, 3.8))
    profiler.record_checkpoint(CheckpointMeasurement("resnet_32", 40 * 2 ** 20,
                                                     5 * 2 ** 10, 300 * 2 ** 10, 3.9))
    features, targets, _ = profiler.checkpoint_feature_matrix()
    assert features.shape == (2, 4)
    mean, std = profiler.mean_checkpoint_time("resnet_32")
    assert mean == pytest.approx(3.85)
    assert std > 0
    with pytest.raises(DataError):
        profiler.mean_checkpoint_time("unknown")


def test_profiler_rejects_invalid_measurements():
    profiler = PerformanceProfiler()
    with pytest.raises(DataError):
        profiler.record_speed(SpeedMeasurement("m", "k80", 1.0, 4.11, 0.0))
    with pytest.raises(DataError):
        profiler.record_checkpoint(CheckpointMeasurement("m", 1, 1, 1, 0.0))
    with pytest.raises(DataError):
        profiler.checkpoint_feature_matrix()


def test_speed_measurement_derived_properties():
    measurement = SpeedMeasurement("resnet_15", "k80", 0.59, 4.11, 0.105)
    assert measurement.speed == pytest.approx(1 / 0.105)
    assert measurement.computation_ratio == pytest.approx(0.59 / 4.11)
