"""Shared fixtures.

Expensive objects (the model catalog, small measurement campaigns) are
session-scoped so the suite stays fast while still exercising the real
code paths.
"""

from __future__ import annotations

import pytest

from repro.measurement.checkpoint_campaign import run_checkpoint_campaign
from repro.measurement.speed_campaign import run_speed_campaign
from repro.workloads.catalog import default_catalog


@pytest.fixture(scope="session")
def catalog():
    """The shared twenty-model catalog."""
    return default_catalog()


@pytest.fixture(scope="session")
def resnet32_profile(catalog):
    """Profile of the paper's ResNet-32."""
    return catalog.profile("resnet_32")


@pytest.fixture(scope="session")
def resnet15_profile(catalog):
    """Profile of the paper's ResNet-15."""
    return catalog.profile("resnet_15")


@pytest.fixture(scope="session")
def speed_dataset(catalog):
    """A small but real speed-measurement dataset (all 20 models, K80+P100).

    Uses fewer steps than the paper's 4000 to keep the suite fast; the
    regression tests only need a consistent dataset, not the full dwell
    time.
    """
    return run_speed_campaign(gpu_names=("k80", "p100"), steps=800, seed=7,
                              catalog=catalog)


@pytest.fixture(scope="session")
def checkpoint_dataset(catalog):
    """A checkpoint-measurement dataset over the full catalog."""
    return run_checkpoint_campaign(seed=7, catalog=catalog,
                                   with_sequential_check=False)
