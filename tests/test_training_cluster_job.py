"""Tests for cluster specifications and training jobs."""

import pytest

from repro.errors import ConfigurationError
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import TrainingJob, measurement_job


def test_worker_spec_validates_region_gpu_combination():
    WorkerSpec(gpu_name="v100", region_name="us-central1")
    with pytest.raises(ConfigurationError):
        WorkerSpec(gpu_name="v100", region_name="us-east1")


def test_worker_spec_normalizes_names():
    worker = WorkerSpec(gpu_name="K80", region_name="US-EAST1")
    assert worker.gpu_name == "k80"
    assert worker.region_name == "us-east1"


def test_from_counts_matches_paper_notation():
    cluster = ClusterSpec.from_counts(k80=2, p100=1, v100=1, region_name="us-central1")
    assert cluster.counts() == (2, 1, 1)
    assert cluster.num_workers == 4
    assert cluster.is_heterogeneous
    assert cluster.describe() == "(2, 1, 1) + 1 PS"


def test_single_cluster_is_simplest_configuration():
    cluster = ClusterSpec.single("k80")
    assert cluster.num_workers == 1
    assert cluster.num_parameter_servers == 1
    assert not cluster.is_heterogeneous


def test_homogeneous_cluster_not_heterogeneous():
    cluster = ClusterSpec.from_counts(p100=4)
    assert not cluster.is_heterogeneous
    assert cluster.gpu_names() == ["p100"] * 4


def test_cluster_requires_workers_and_ps():
    with pytest.raises(ConfigurationError):
        ClusterSpec(workers=())
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_counts(k80=1, num_parameter_servers=0)
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_counts(k80=-1)


def test_with_parameter_servers_returns_new_spec():
    cluster = ClusterSpec.from_counts(p100=2)
    upgraded = cluster.with_parameter_servers(2)
    assert cluster.num_parameter_servers == 1
    assert upgraded.num_parameter_servers == 2
    assert upgraded.workers == cluster.workers


def test_with_additional_worker():
    cluster = ClusterSpec.from_counts(k80=1)
    bigger = cluster.with_additional_worker(WorkerSpec(gpu_name="p100"))
    assert bigger.num_workers == 2
    assert bigger.counts() == (1, 1, 0)


def test_transient_flag_propagates():
    transient = ClusterSpec.from_counts(k80=2, transient=True)
    on_demand = ClusterSpec.from_counts(k80=2, transient=False)
    assert transient.is_transient
    assert not on_demand.is_transient


def test_training_job_validation(resnet32_profile):
    with pytest.raises(ConfigurationError):
        TrainingJob(profile=resnet32_profile, total_steps=0)
    with pytest.raises(ConfigurationError):
        TrainingJob(profile=resnet32_profile, batch_size=0)
    with pytest.raises(ConfigurationError):
        TrainingJob(profile=resnet32_profile, checkpoint_interval_steps=0)


def test_training_job_derived_quantities(resnet32_profile):
    job = TrainingJob(profile=resnet32_profile, total_steps=64_000,
                      checkpoint_interval_steps=4000, batch_size=128)
    assert job.num_checkpoints == 16
    assert job.checkpointing_enabled
    assert job.images_processed() == 64_000 * 128
    assert job.epochs() == pytest.approx(64_000 * 128 / 50_000)
    assert job.model_name == "resnet_32"


def test_measurement_job_disables_checkpointing_by_default(resnet32_profile):
    job = measurement_job(resnet32_profile, steps=4000)
    assert job.total_steps == 4000
    assert not job.checkpointing_enabled


def test_measurement_job_with_checkpointing(resnet32_profile):
    job = measurement_job(resnet32_profile, steps=400, checkpointing=True,
                          checkpoint_interval_steps=100)
    assert job.num_checkpoints == 4


def test_with_steps_returns_copy(resnet32_profile):
    job = TrainingJob(profile=resnet32_profile, total_steps=1000)
    longer = job.with_steps(5000)
    assert job.total_steps == 1000
    assert longer.total_steps == 5000
    assert longer.profile is job.profile
