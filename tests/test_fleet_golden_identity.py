"""Golden payload-identity tests for cold-only, statically placed fleets.

``tests/data/fleet_golden_single_region_k80_seed5.json`` was frozen from
the PR 4 fleet runner, **before** the warm pool and pool-aware placement
landed.  The contract: a scenario with the default knobs
(``warm_capacity=0``, ``placement="static"``) must keep producing that
payload byte for byte — across the fleet scheduler
(``REPRO_FLEET_SCHEDULER``), the simulation core path
(``REPRO_CORE_FASTFORWARD``), and the trace level
(``REPRO_FLEET_TRACE_LEVEL``) — so future refactors of the pool, the
placement path, or the payload shape cannot silently drift the baseline.

Regenerate the fixture **only** for a deliberate, documented payload
change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.scenarios import get_scenario, run_fleet
    from repro.simulation.rng import RandomStreams
    payload = run_fleet(get_scenario("single_region_k80"), RandomStreams(seed=5))
    with open("tests/data/fleet_golden_single_region_k80_seed5.json", "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    PY
"""

import dataclasses
import json
import pathlib

import pytest

from repro.scenarios import get_scenario, run_fleet
from repro.simulation.rng import RandomStreams

FIXTURE = (pathlib.Path(__file__).parent / "data"
           / "fleet_golden_single_region_k80_seed5.json")


def golden_payload():
    return json.loads(FIXTURE.read_text())


def normalized(payload):
    """A JSON round trip so tuples/ints normalize exactly like the fixture."""
    return json.loads(json.dumps(payload))


@pytest.mark.parametrize("scheduler", ("wakeset", "roundrobin"))
@pytest.mark.parametrize("fastforward", ("1", "0"))
@pytest.mark.parametrize("trace_level", ("full", "summary"))
def test_default_fleet_matches_the_frozen_pr4_payload(
        scheduler, fastforward, trace_level, catalog, monkeypatch):
    """warm_capacity=0 + static placement == the frozen PR 4 payload, for
    every scheduler x core path x trace level combination (all knobs set
    through their environment switches, like a real deployment would)."""
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", scheduler)
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", fastforward)
    monkeypatch.setenv("REPRO_FLEET_TRACE_LEVEL", trace_level)
    payload = run_fleet(get_scenario("single_region_k80"),
                        RandomStreams(seed=5), catalog=catalog)
    assert normalized(payload) == golden_payload()


def test_explicit_defaults_are_the_defaults(catalog):
    """Spelling out warm_capacity=0 / placement='static' changes nothing:
    not the serialized parameters (hence not the derived sweep seeds or
    cache keys) and not the payload."""
    scenario = get_scenario("single_region_k80")
    explicit = dataclasses.replace(scenario, warm_seconds=0.0,
                                   warm_capacity=0, placement="static")
    assert explicit.to_params() == scenario.to_params()
    payload = run_fleet(explicit, RandomStreams(seed=5), catalog=catalog)
    assert normalized(payload) == golden_payload()


ADAPTIVE_FIXTURE = (pathlib.Path(__file__).parent / "data"
                    / "fleet_golden_adaptive_placement_seed5.json")


def adaptive_golden_payload():
    return json.loads(ADAPTIVE_FIXTURE.read_text())


@pytest.mark.parametrize("score_backend", ("table", "sampling"))
@pytest.mark.parametrize("scheduler", ("wakeset", "roundrobin"))
def test_adaptive_fleet_matches_the_frozen_pr5_payload(
        score_backend, scheduler, catalog, monkeypatch):
    """The adaptive-placement scenario payload was frozen from the PR 5
    runner, before the PlacementQuery API and the vectorized score table
    replaced the per-option sampler.  Both score backends (and both fleet
    schedulers) must keep reproducing it byte for byte — the bit-identity
    contract of the score-table replay."""
    monkeypatch.setenv("REPRO_PLACEMENT_SCORES", score_backend)
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", scheduler)
    payload = run_fleet(get_scenario("adaptive_placement"),
                        RandomStreams(seed=5), catalog=catalog)
    assert normalized(payload) == adaptive_golden_payload()


def test_adaptive_fixture_is_well_formed():
    """Shape guard for the adaptive fixture, like the PR 4 one below."""
    payload = adaptive_golden_payload()
    assert payload["scenario"] == "adaptive_placement"
    assert payload["placement"] == "adaptive"
    assert set(payload["pool"]["cells"]) == {"k80/europe-west1",
                                             "k80/us-west1"}


def test_fixture_is_well_formed():
    """Guard the fixture itself: a hand edit that breaks its shape should
    fail loudly here, not as a confusing diff in the matrix test."""
    payload = golden_payload()
    assert payload["scenario"] == "single_region_k80"
    assert payload["jobs_total"] == 3
    assert set(payload["pool"]["cells"]) == {"k80/us-west1"}
    # The frozen baseline predates the warm pool / placement payload keys.
    assert "replacements_warm" not in payload
    assert "placement" not in payload
    assert "warm" not in payload["pool"]["cells"]["k80/us-west1"]
