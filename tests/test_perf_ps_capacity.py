"""Tests for the parameter-server capacity model (Table III / Fig. 4 / Fig. 12)."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.ps_capacity import PSCapacityModel, effective_cluster_speed
from repro.perf.step_time import StepTimeModel
from repro.workloads.catalog import default_catalog

MB = 1024 * 1024


@pytest.fixture()
def model():
    return PSCapacityModel()


def test_capacity_decreases_with_gradient_size(model):
    capacities = [model.single_ps_capacity(mb * MB) for mb in (1, 5, 15, 50, 200)]
    assert capacities == sorted(capacities, reverse=True)


def test_capacity_positive_even_for_extreme_sizes(model):
    assert model.single_ps_capacity(0.1 * MB) > 0
    assert model.single_ps_capacity(2000 * MB) > 0


def test_capacity_scales_sublinearly_with_ps_count(model):
    single = model.capacity(15 * MB, 1)
    double = model.capacity(15 * MB, 2)
    assert single < double < 2 * single
    # Fig. 12: adding a second PS yields up to ~70% improvement.
    assert 1.6 < double / single < 2.0


def test_invalid_inputs_rejected(model):
    with pytest.raises(ConfigurationError):
        model.single_ps_capacity(0)
    with pytest.raises(ConfigurationError):
        model.capacity(MB, 0)
    with pytest.raises(ConfigurationError):
        PSCapacityModel(anchors=[(1.0, 10.0)])
    with pytest.raises(ConfigurationError):
        effective_cluster_speed(10.0, 0.0)


def test_effective_cluster_speed_soft_minimum():
    assert effective_cluster_speed(10.0, 1000.0) == pytest.approx(10.0, rel=1e-3)
    assert effective_cluster_speed(1000.0, 10.0) == pytest.approx(10.0, rel=1e-2)
    middle = effective_cluster_speed(10.0, 10.0)
    assert 8.0 < middle < 10.0
    assert effective_cluster_speed(0.0, 10.0) == 0.0


def test_cluster_speed_matches_table3_shape(model):
    catalog = default_catalog()
    steps = StepTimeModel()
    profile = catalog.profile("resnet_32")

    def cluster_speed(gpu, n):
        speed = steps.mean_speed(profile.gflops, gpu)
        return model.cluster_speed([speed] * n, profile.parameter_bytes, 1)

    # K80 clusters never bottleneck through eight workers (per-worker step
    # time within a few percent of the baseline).
    k80_slowdown = model.worker_slowdown(
        [steps.mean_speed(profile.gflops, "k80")] * 8, profile.parameter_bytes, 1)
    assert k80_slowdown < 1.06
    # P100 clusters saturate by eight workers, V100 by four.
    p100_8 = model.worker_slowdown(
        [steps.mean_speed(profile.gflops, "p100")] * 8, profile.parameter_bytes, 1)
    assert p100_8 > 1.8
    v100_4 = model.worker_slowdown(
        [steps.mean_speed(profile.gflops, "v100")] * 4, profile.parameter_bytes, 1)
    assert v100_4 > 1.2
    # Cluster speed is monotone in the worker count even when saturated.
    assert cluster_speed("p100", 8) >= cluster_speed("p100", 4) >= cluster_speed("p100", 1)


def test_second_ps_lifts_saturated_cluster(model):
    catalog = default_catalog()
    steps = StepTimeModel()
    profile = catalog.profile("resnet_32")
    speeds = [steps.mean_speed(profile.gflops, "p100")] * 8
    one_ps = model.cluster_speed(speeds, profile.parameter_bytes, 1)
    two_ps = model.cluster_speed(speeds, profile.parameter_bytes, 2)
    improvement = two_ps / one_ps - 1.0
    assert 0.5 < improvement < 0.85  # The paper reports "up to 70.6%".


def test_scaling_efficiencies_flatten_cluster_speed(model):
    speeds = [2.0] * 6
    flat = model.cluster_speed(speeds, 10 * MB, 1, scaling_efficiencies=[0.0] * 6)
    normal = model.cluster_speed(speeds, 10 * MB, 1, scaling_efficiencies=[1.0] * 6)
    assert flat == pytest.approx(2.0, rel=0.05)
    assert normal > 5 * flat / 2


def test_scaling_efficiency_length_mismatch_rejected(model):
    with pytest.raises(ConfigurationError):
        model.cluster_speed([1.0, 2.0], MB, 1, scaling_efficiencies=[1.0])


def test_utilization_and_slowdown_consistency(model):
    speeds = [10.0] * 4
    utilization = model.utilization(speeds, 15 * MB, 1)
    slowdown = model.worker_slowdown(speeds, 15 * MB, 1)
    assert utilization > 0
    assert slowdown >= 1.0
    assert model.worker_slowdown([], 15 * MB, 1) == 1.0
