"""The redesigned placement query API and the vectorized score table.

Pins the contracts the ISSUE's API redesign rests on:

* the ``table`` score backend is **bit-identical** to the legacy
  ``sampling`` backend across the full calibration grid, for every
  duration (the tape-replay equivalence);
* the five deprecated ``LaunchAdvisor`` entry points are thin shims over
  ``answer()`` — same numbers, plus a ``DeprecationWarning``;
* :class:`~repro.modeling.placement.PlacementQuery` validates its two
  modes and round-trips through the wire format.
"""

import pytest

from repro.errors import ConfigurationError
from repro.modeling.launch_advisor import (
    LaunchAdvisor,
    placement_scores_backend,
)
from repro.modeling.placement import PlacementQuery, ScoreTable
from repro.scenarios.pool import TransientPool
from repro.simulation.engine import Simulator

#: Small sample count so the exhaustive sampling-backend sweeps stay fast;
#: the equivalence holds sample for sample, so the count does not matter.
SAMPLES = 50

DURATIONS = (0.5, 2.0, 6.0, 23.9)


def advisors(seed=0, samples=SAMPLES):
    return (LaunchAdvisor(samples_per_option=samples, seed=seed,
                          score_backend="table"),
            LaunchAdvisor(samples_per_option=samples, seed=seed,
                          score_backend="sampling"))


# ---------------------------------------------------------------------------
# Backend bit-identity (the tape-replay contract).
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", (0, 7))
def test_table_scores_match_sampling_exactly_on_the_full_grid(seed):
    """Every calibrated (gpu, region) cell, every launch hour, several
    durations: the table's rank lookup equals the legacy Monte-Carlo
    estimate exactly (== on floats, not approx)."""
    table, sampling = advisors(seed=seed)
    for gpu, region in table.score_table.available_cells():
        for hour in range(24):
            for duration in DURATIONS:
                assert (table.revocation_score(gpu, region, hour, duration)
                        == sampling.revocation_score(gpu, region, hour,
                                                     duration))


def test_answer_is_identical_across_backends_live_and_grid():
    table, sampling = advisors()
    live = PlacementQuery(gpu_name="k80", duration_hours=3.0,
                          hour_of_day_utc=14.25)
    grid = PlacementQuery(gpu_name="v100", duration_hours=8.0,
                          num_workers=4, launch_hours=(0, 6, 12, 18))
    for query in (live, grid):
        assert table.answer(query) == sampling.answer(query)


def test_vectorized_probabilities_equal_scalar_lookups():
    table = ScoreTable(samples=SAMPLES, seed=3)
    cells = [(region, hour)
             for gpu, region in table.available_cells() if gpu == "k80"
             for hour in (0, 5, 13, 22)]
    for duration in DURATIONS:
        bulk = table.probabilities("k80", cells, duration)
        for (region, hour), value in zip(cells, bulk):
            assert value == table.probability("k80", region, hour, duration)


def test_probability_is_monotonic_in_duration():
    table = ScoreTable(samples=SAMPLES)
    previous = 0.0
    for duration in (0.1, 1.0, 4.0, 12.0, 24.0, 100.0):
        current = table.probability("k80", "us-west1", 9, duration)
        assert current >= previous
        previous = current


def test_answer_is_deterministic_and_seed_sensitive():
    query = PlacementQuery(gpu_name="p100", duration_hours=5.0,
                           launch_hours=(3, 15))
    first = LaunchAdvisor(samples_per_option=SAMPLES, seed=2).answer(query)
    second = LaunchAdvisor(samples_per_option=SAMPLES, seed=2).answer(query)
    assert first == second
    other_seed = LaunchAdvisor(samples_per_option=SAMPLES,
                               seed=11).answer(query)
    assert [option.revocation_probability for option in first.options] != \
        [option.revocation_probability for option in other_seed.options]


# ---------------------------------------------------------------------------
# The deprecated entry points are shims over answer().
# ---------------------------------------------------------------------------
def test_score_option_shim_equals_answer():
    advisor, _ = advisors()
    with pytest.warns(DeprecationWarning, match="score_option"):
        legacy = advisor.score_option("k80", "us-west1", 8, 6.0,
                                      num_workers=3)
    option = advisor.answer(PlacementQuery(
        gpu_name="k80", duration_hours=6.0, num_workers=3,
        region_names=("us-west1",), launch_hours=(8,))).options[0]
    assert legacy.revocation_probability == option.revocation_probability
    assert legacy.expected_revocations == option.expected_revocations


def test_rank_options_and_recommend_shims_equal_answer():
    advisor, _ = advisors()
    query = PlacementQuery(gpu_name="k80", duration_hours=6.0,
                           launch_hours=(0, 4, 8, 12, 16, 20))
    decision = advisor.answer(query)
    with pytest.warns(DeprecationWarning, match="rank_options"):
        ranked = advisor.rank_options("k80", 6.0)
    assert [(opt.region_name, opt.launch_hour_local,
             opt.revocation_probability) for opt in ranked] == \
        [(opt.region_name, opt.launch_hour_local,
          opt.revocation_probability) for opt in decision.options]
    with pytest.warns(DeprecationWarning, match="recommend"):
        best = advisor.recommend("k80", 6.0)
    assert (best.region_name, best.launch_hour_local) == \
        (decision.options[0].region_name,
         decision.options[0].launch_hour_local)


def test_place_and_best_feasible_shims_equal_answer():
    advisor, _ = advisors()
    pool = TransientPool(Simulator(), {("k80", "us-west1"): 2,
                                       ("k80", "europe-west1"): 2})
    query = PlacementQuery(gpu_name="k80", duration_hours=2.0,
                           hour_of_day_utc=9.0)
    decision = advisor.answer(query, pool=pool.snapshot())
    with pytest.warns(DeprecationWarning, match="place"):
        placed = advisor.place("k80", 2.0, pool.snapshot(), 9.0)
    assert tuple(placed) == decision.options
    with pytest.warns(DeprecationWarning, match="best_feasible"):
        best = advisor.best_feasible("k80", 2.0, pool.snapshot(), 9.0)
    assert best == decision.best


# ---------------------------------------------------------------------------
# PlacementQuery validation and the wire format.
# ---------------------------------------------------------------------------
def test_query_requires_exactly_one_mode():
    with pytest.raises(ConfigurationError, match="exactly one"):
        PlacementQuery(gpu_name="k80", duration_hours=1.0)
    with pytest.raises(ConfigurationError, match="exactly one"):
        PlacementQuery(gpu_name="k80", duration_hours=1.0,
                       launch_hours=(8,), hour_of_day_utc=9.0)


@pytest.mark.parametrize("kwargs,match", [
    (dict(duration_hours=0.0, launch_hours=(8,)), "duration_hours"),
    (dict(duration_hours=1.0, num_workers=0, launch_hours=(8,)),
     "num_workers"),
    (dict(duration_hours=1.0, queue_weight=-0.1, launch_hours=(8,)),
     "queue_weight"),
    (dict(duration_hours=1.0, launch_hours=()), "launch_hours"),
    (dict(duration_hours=1.0, region_names=(), launch_hours=(8,)),
     "region_names"),
])
def test_query_rejects_bad_fields(kwargs, match):
    with pytest.raises(ConfigurationError, match=match):
        PlacementQuery(gpu_name="k80", **kwargs)


def test_query_normalizes_hours():
    grid = PlacementQuery(gpu_name="k80", duration_hours=1.0,
                          launch_hours=(8.6, 23))
    assert grid.launch_hours == (8, 23)
    live = PlacementQuery(gpu_name="k80", duration_hours=1.0,
                          hour_of_day_utc=25.5)
    assert live.hour_of_day_utc == 1.5


def test_query_round_trips_through_params():
    for query in (
        PlacementQuery(gpu_name="k80", duration_hours=2.0,
                       hour_of_day_utc=9.0),
        PlacementQuery(gpu_name="v100", duration_hours=8.0, num_workers=4,
                       region_names=("us-west1",), launch_hours=(0, 12),
                       queue_weight=1.25),
    ):
        assert PlacementQuery.from_params(query.to_params()) == query
    # Defaults are omitted from the wire format.
    minimal = PlacementQuery(gpu_name="k80", duration_hours=2.0,
                             hour_of_day_utc=9.0)
    assert minimal.to_params() == {"gpu_name": "k80", "duration_hours": 2.0,
                                   "hour_of_day_utc": 9.0}


def test_from_params_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown placement-query"):
        PlacementQuery.from_params({"gpu_name": "k80", "duration_hours": 1.0,
                                    "hour_of_day_utc": 9.0, "color": "red"})


def test_decision_best_is_none_when_nothing_is_feasible():
    advisor, _ = advisors()
    pool = TransientPool(Simulator(), {("k80", "us-west1"): 1})
    pool.acquire("k80", "us-west1")
    decision = advisor.answer(
        PlacementQuery(gpu_name="k80", duration_hours=2.0,
                       hour_of_day_utc=9.0), pool=pool.snapshot())
    assert decision.best is None and not decision.feasible
    assert all(not option.feasible for option in decision.options)


# ---------------------------------------------------------------------------
# ScoreTable construction and backend selection.
# ---------------------------------------------------------------------------
def test_score_table_validates_inputs():
    with pytest.raises(ConfigurationError, match="samples"):
        ScoreTable(samples=5)
    table = ScoreTable(samples=SAMPLES)
    with pytest.raises(ConfigurationError, match="duration_hours"):
        table.probability("k80", "us-west1", 9, 0.0)
    with pytest.raises(ConfigurationError, match="duration_hours"):
        table.probabilities("k80", [("us-west1", 9)], -1.0)


def test_warm_builds_every_cell_once():
    table = ScoreTable(samples=SAMPLES)
    built = table.warm()
    assert built == len(table.available_cells()) * 24
    assert table.options_built == built
    # Warming again (or querying) builds nothing new.
    assert table.warm() == built
    table.probability("k80", "us-west1", 9, 2.0)
    assert table.options_built == built


def test_backend_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_PLACEMENT_SCORES", "sampling")
    assert placement_scores_backend() == "sampling"
    assert LaunchAdvisor(samples_per_option=SAMPLES).score_backend == \
        "sampling"
    monkeypatch.setenv("REPRO_PLACEMENT_SCORES", "bogus")
    assert placement_scores_backend() == "table"
    monkeypatch.delenv("REPRO_PLACEMENT_SCORES")
    assert placement_scores_backend() == "table"
    with pytest.raises(ConfigurationError, match="score backend"):
        LaunchAdvisor(samples_per_option=SAMPLES, score_backend="bogus")
