"""The pluggable step-record sink protocol (``repro.training.trace``).

The session writes its chunk rows through a :class:`TraceSink`; the two
built-in sinks (``full`` keeps rows, ``summary`` keeps aggregates) must
agree on every aggregate read, and :class:`TeeSink` must fan writes out
without perturbing what the primary sink reports.
"""

import pytest

from repro.errors import DataError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession
from repro.training.trace import (
    StepRecord,
    StepRecordArray,
    StepRecordSummary,
    TeeSink,
    TraceSink,
    make_step_sink,
)


def _fill(sink, rows=5):
    for index in range(rows):
        sink.append_row(f"worker-{index % 2}", float(index), float(index) + 0.5,
                        10, 10 * (index + 1), 10 * (index // 2 + 1))
    return sink


class RecordingSink(TraceSink):
    """Minimal custom sink: counts rows, implements only the write API."""

    def __init__(self):
        self.rows = 0
        self.shrunk = 0

    def append_row(self, worker_id, start_time, end_time, steps,
                   cluster_step, worker_step=0):
        self.rows += 1

    def extend_rows(self, worker_ids, start_times, end_times, steps,
                    cluster_steps, worker_steps):
        self.rows += len(worker_ids)

    def shrink_to_fit(self):
        self.shrunk += 1

    @property
    def nbytes(self):
        # TeeSink.nbytes sums every member, so even a write-only
        # secondary must answer the memory read.
        return 0


def test_make_step_sink_levels():
    assert isinstance(make_step_sink("full"), StepRecordArray)
    assert isinstance(make_step_sink("summary"), StepRecordSummary)
    with pytest.raises(DataError):
        make_step_sink("verbose")


def test_base_append_delegates_to_append_row():
    sink = RecordingSink()
    sink.append(StepRecord("worker-0", 0.0, 1.0, 10, 10, 10))
    assert sink.rows == 1


def test_full_and_summary_sinks_agree_on_aggregates():
    full = _fill(StepRecordArray())
    summary = _fill(StepRecordSummary())
    assert len(full) == len(summary) == 5
    assert full.steps_total == summary.steps_total == 50
    assert full.max_end_time == summary.max_end_time == 4.5
    assert summary.nbytes < full.nbytes


def test_tee_sink_fans_out_and_reads_from_primary():
    primary = StepRecordArray()
    summary = StepRecordSummary()
    recorder = RecordingSink()
    tee = _fill(TeeSink(primary, summary, recorder))
    assert len(primary) == len(summary) == recorder.rows == 5
    assert len(tee) == 5
    assert tee.steps_total == primary.steps_total
    assert tee.max_end_time == primary.max_end_time
    # nbytes sums across members (the tee holds all of them alive).
    assert tee.nbytes == primary.nbytes + summary.nbytes
    tee.shrink_to_fit()
    assert recorder.shrunk == 1


def test_tee_sink_extend_rows_reaches_every_member():
    primary = StepRecordArray()
    recorder = RecordingSink()
    tee = TeeSink(primary, recorder)
    tee.extend_rows(["worker-0", "worker-1"], [0.0, 1.0], [0.5, 1.5],
                    [10, 10], [10, 20], [10, 10])
    assert len(primary) == 2
    assert recorder.rows == 2


def _run_session(profile, step_sink=None, trace_level="full"):
    session = TrainingSession(
        Simulator(), ClusterSpec.single("k80"), measurement_job(profile, steps=400),
        streams=RandomStreams(3), trace_level=trace_level, step_sink=step_sink)
    return session.run_to_completion()


def test_session_custom_step_sink_matches_default(resnet15_profile):
    baseline = _run_session(resnet15_profile)
    primary = StepRecordArray()
    recorder = RecordingSink()
    teed = _run_session(resnet15_profile, step_sink=TeeSink(primary, recorder))
    # The tee is transparent: same rows, same summary, secondary saw all.
    assert teed.summary() == baseline.summary()
    assert list(primary) == list(baseline.step_records)
    assert recorder.rows == len(baseline.step_records)


def test_session_step_sink_overrides_trace_level(resnet15_profile):
    # An explicit sink wins over trace_level; a summary sink behind a
    # "full" request keeps aggregates identical to a true summary run.
    summary_run = _run_session(resnet15_profile, trace_level="summary")
    overridden = _run_session(resnet15_profile,
                              step_sink=StepRecordSummary(),
                              trace_level="full")
    assert overridden.summary() == summary_run.summary()
