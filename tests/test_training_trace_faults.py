"""Tests for training traces, parameter-server state, and fault injection."""

import pytest

from repro.errors import ConfigurationError, DataError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.faults import FaultInjector
from repro.training.job import measurement_job
from repro.training.parameter_server import ParameterServerGroup
from repro.training.session import TrainingSession
from repro.training.trace import StepRecord, TrainingTrace
from repro.training.worker import WorkerState


def make_trace_with_records():
    trace = TrainingTrace(model_name="m", cluster_description="(1, 0, 0) + 1 PS")
    time = 0.0
    for step in range(1, 41):
        trace.step_records.append(StepRecord(
            worker_id="worker-0", start_time=time, end_time=time + 1.0,
            steps=10, cluster_step=step * 10, worker_step=step * 10))
        time += 1.0
    trace.end_time = time
    return trace


def test_trace_cluster_speed_and_series():
    trace = make_trace_with_records()
    assert trace.cluster_speed(warmup_steps=100) == pytest.approx(10.0)
    series = trace.speed_series(window_steps=100)
    assert len(series) == 4
    assert all(speed == pytest.approx(10.0) for _step, speed in series)
    assert trace.speed_stability(warmup_steps=0) == pytest.approx(0.0, abs=1e-9)


def test_trace_worker_statistics():
    trace = make_trace_with_records()
    mean, std = trace.worker_mean_step_time("worker-0")
    assert mean == pytest.approx(0.1)
    assert std == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(DataError):
        trace.worker_step_times("worker-9")


def test_trace_requires_post_warmup_data():
    trace = TrainingTrace(model_name="m", cluster_description="c")
    with pytest.raises(DataError):
        trace.cluster_speed()
    with pytest.raises(DataError):
        trace.speed_stability()


def test_trace_summary_keys():
    trace = make_trace_with_records()
    summary = trace.summary()
    assert summary["total_steps"] == 400
    assert "cluster_speed" in summary
    assert summary["num_revocations"] == 0


def test_parameter_server_group_validation():
    with pytest.raises(ConfigurationError):
        ParameterServerGroup(count=0)
    group = ParameterServerGroup(count=1)
    group.record_updates(50)
    assert group.updates_applied == 50
    with pytest.raises(ConfigurationError):
        group.record_updates(-1)
    group.add_servers()
    assert group.count == 2
    with pytest.raises(ConfigurationError):
        group.add_servers(0)


def test_parameter_server_capacity_grows_with_count():
    group = ParameterServerGroup(count=1)
    one = group.capacity(10 * 1024 * 1024)
    group.add_servers()
    assert group.capacity(10 * 1024 * 1024) > one


def test_worker_state_revoke():
    worker = WorkerState(worker_id="w", spec=WorkerSpec(gpu_name="k80"))
    assert worker.active and worker.is_transient
    worker.revoke(12.0)
    assert not worker.active
    assert worker.revoked_at == 12.0


def test_fault_injector_revokes_and_replaces(resnet15_profile):
    cluster = ClusterSpec.from_counts(k80=2)
    session = TrainingSession(Simulator(), cluster,
                              measurement_job(resnet15_profile, steps=1500),
                              streams=RandomStreams(3))
    injector = FaultInjector(session, poll_interval_seconds=0.5)
    injector.revoke_at_step("worker-0", 300)
    injector.replace_at_step(WorkerSpec(gpu_name="k80"), 600, overhead_seconds=5.0)
    trace = session.run_to_completion()
    assert trace.num_revocations == 1
    assert trace.num_replacements == 1
    assert trace.revocation_records[0].cluster_step >= 300
    assert trace.replacement_records[0].cluster_step >= 600


def test_fault_injector_validation(resnet15_profile):
    session = TrainingSession(Simulator(), ClusterSpec.single("k80"),
                              measurement_job(resnet15_profile, steps=200),
                              streams=RandomStreams(0))
    with pytest.raises(ConfigurationError):
        FaultInjector(session, poll_interval_seconds=0.0)
    injector = FaultInjector(session)
    with pytest.raises(ConfigurationError):
        injector.revoke_at_step("worker-0", -1)
    with pytest.raises(ConfigurationError):
        injector.replace_at_step(WorkerSpec(gpu_name="k80"), -5)
