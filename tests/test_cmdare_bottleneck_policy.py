"""Tests for bottleneck detection and the transient-TensorFlow policies."""

import pytest

from repro.cmdare.bottleneck import BottleneckDetector
from repro.cmdare.transient_tf import RecoveryMode, TransientTensorFlowPolicy
from repro.errors import ConfigurationError, DataError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession
from repro.training.worker import WorkerState


def test_detector_flags_large_shortfall_after_warmup():
    detector = BottleneckDetector()
    report = detector.check(predicted_speed=100.0, measured_speed=70.0,
                            elapsed_seconds=60.0)
    assert report.bottleneck_detected
    assert report.deviation == pytest.approx(0.3)
    assert "parameter server" in report.suggestion


def test_detector_respects_warmup_window():
    detector = BottleneckDetector(warmup_seconds=30.0)
    report = detector.check(100.0, 10.0, elapsed_seconds=10.0)
    assert report.in_warmup
    assert not report.bottleneck_detected


def test_detector_threshold_boundary():
    detector = BottleneckDetector(threshold=0.067)
    ok = detector.check(100.0, 94.0, elapsed_seconds=60.0)
    flagged = detector.check(100.0, 92.0, elapsed_seconds=60.0)
    assert not ok.bottleneck_detected
    assert flagged.bottleneck_detected


def test_detector_worker_variant():
    detector = BottleneckDetector()
    report = detector.check_worker(predicted_step_time=0.1, measured_step_time=0.15,
                                   elapsed_seconds=60.0)
    assert report.bottleneck_detected


def test_detector_validation():
    with pytest.raises(ConfigurationError):
        BottleneckDetector(warmup_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        BottleneckDetector(threshold=0.0)
    detector = BottleneckDetector()
    with pytest.raises(DataError):
        detector.check(0.0, 10.0, 60.0)
    with pytest.raises(DataError):
        detector.check_worker(0.0, 0.1, 60.0)


def test_policy_reuse_ip_only_in_legacy_mode():
    transient = TransientTensorFlowPolicy()
    legacy = TransientTensorFlowPolicy(recovery_mode=RecoveryMode.LEGACY_IP_REUSE)
    assert not transient.reuse_chief_ip
    assert legacy.reuse_chief_ip


def test_policy_expected_recomputation(resnet15_profile):
    session = TrainingSession(Simulator(), ClusterSpec.single("k80"),
                              measurement_job(resnet15_profile, steps=600),
                              streams=RandomStreams(0))
    session.run_to_completion()
    transient = TransientTensorFlowPolicy()
    legacy = TransientTensorFlowPolicy(recovery_mode=RecoveryMode.LEGACY_IP_REUSE)
    assert transient.expected_recomputation_steps(session) == 0
    assert legacy.expected_recomputation_steps(session) == session.steps_since_checkpoint


def test_policy_describes_recovery():
    policy = TransientTensorFlowPolicy()
    chief = WorkerState(worker_id="w0", spec=WorkerSpec(gpu_name="k80"), is_chief=True)
    plain = WorkerState(worker_id="w1", spec=WorkerSpec(gpu_name="k80"))
    assert "handed" in policy.describe_recovery(chief)
    assert "replacement" in policy.describe_recovery(plain)
    legacy = TransientTensorFlowPolicy(recovery_mode=RecoveryMode.LEGACY_IP_REUSE)
    assert "recomputes" in legacy.describe_recovery(chief)
