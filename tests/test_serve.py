"""The online placement service (`repro.serve`) and its transport.

The serving invariants the ISSUE names:

* ``answer_many`` is bit-identical to the same queries issued as
  sequential singles;
* a decision cached at one pool version is structurally unservable after
  the pool moves (stale epochs never leak);
* answers are deterministic under a fixed advisor seed;
* the JSON-lines TCP transport round-trips queries, batches, and stats,
  and answers malformed input with an error line instead of dying.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.scenarios.pool import TransientPool
from repro.serve.service import PlacementService
from repro.serve.transport import (
    handle_request,
    request,
    serve_address,
    start_server,
)
from repro.simulation.engine import Simulator

SAMPLES = 50


def make_pool():
    return TransientPool(Simulator(), {("k80", "us-west1"): 2,
                                       ("k80", "europe-west1"): 2})


def make_service(pool=None, seed=0):
    advisor = LaunchAdvisor(samples_per_option=SAMPLES, seed=seed)
    return PlacementService(advisor=advisor, pool=pool)


def queries(count=12):
    return [PlacementQuery(gpu_name="k80",
                           duration_hours=float(1 + index % 4),
                           hour_of_day_utc=float((index * 5) % 24))
            for index in range(count)]


# ---------------------------------------------------------------------------
# Service invariants.
# ---------------------------------------------------------------------------
def test_batch_is_bit_identical_to_sequential_singles():
    batch = asyncio.run(make_service(make_pool()).answer_many(queries()))

    async def singles():
        service = make_service(make_pool())
        return [await service.answer(query) for query in queries()]

    assert batch == asyncio.run(singles())


def test_answers_are_deterministic_under_a_fixed_seed():
    first = asyncio.run(make_service(make_pool(), seed=4).answer_many(
        queries()))
    second = asyncio.run(make_service(make_pool(), seed=4).answer_many(
        queries()))
    assert first == second


def test_stale_epoch_decisions_are_never_served():
    pool = make_pool()
    service = make_service(pool)
    query = queries(1)[0]
    before = service.answer_now(query)
    assert before.pool_version == pool.version
    assert service.answer_now(query) is before  # cached within the epoch

    pool.acquire("k80", "us-west1")  # any transition bumps the version
    after = service.answer_now(query)
    assert after is not before
    assert after.pool_version == pool.version > before.pool_version
    assert service.cache_invalidations == 1
    assert service.stats()["cached_decisions"] == 1  # only the new epoch's
    # The transition consumed a slot, so feasibility actually moved too.
    taken = {option.region_name: option.acquirable
             for option in after.options}
    assert taken["us-west1"] == 1


def test_poolless_service_caches_forever():
    service = make_service(pool=None)
    query = queries(1)[0]
    first = service.answer_now(query)
    assert service.answer_now(query) is first
    assert first.pool_version is None
    assert service.cache_hits == 1 and service.cache_invalidations == 0


def test_answer_now_rejects_non_queries():
    with pytest.raises(ConfigurationError, match="PlacementQuery"):
        make_service().answer_now({"gpu_name": "k80"})


def test_warm_builds_the_full_table_and_steady_state_stays_warm():
    service = make_service(make_pool())
    built = service.warm()
    assert built == len(
        service.advisor.score_table.available_cells()) * 24
    asyncio.run(service.answer_many(queries()))
    assert service.stats()["score_options_built"] == built


def test_stats_counters():
    service = make_service(make_pool())
    asyncio.run(service.answer_many(queries(6) + queries(6)))
    stats = service.stats()
    assert stats["queries_answered"] == 12
    assert stats["cache_hits"] == 6
    assert stats["cached_decisions"] == 6
    assert stats["score_backend"] == "table"
    assert stats["pool_version"] == service.pool.version


# ---------------------------------------------------------------------------
# Transport.
# ---------------------------------------------------------------------------
def test_handle_request_rejects_unknown_ops():
    with pytest.raises(ReproError, match="unknown op"):
        asyncio.run(handle_request(make_service(), {"op": "launch_missiles"}))


def test_tcp_round_trip_matches_in_process_answers():
    async def scenario():
        pool = make_pool()
        service = make_service(pool)
        server = await start_server(service)
        host, port = serve_address(server)
        try:
            documents = [{"op": "answer", "query": queries(1)[0].to_params()},
                         {"op": "answer_many",
                          "queries": [q.to_params() for q in queries(4)]},
                         {"op": "stats"}]
            responses = await request(host, port, documents)
        finally:
            server.close()
            await server.wait_closed()
        return service, responses

    service, responses = asyncio.run(scenario())
    single, batch, stats = responses
    assert single["ok"] and batch["ok"] and stats["ok"]
    # The wire decisions are the in-process decisions' wire format (the
    # cache answers the repeated first query, so numbers line up exactly).
    reference = make_service(make_pool())
    expected = asyncio.run(reference.answer_many(queries(4)))
    assert batch["result"] == [decision.to_params()
                               for decision in expected]
    assert single["result"] == expected[0].to_params()
    assert stats["result"]["queries_answered"] == 5
    # JSON round-tripped cleanly (no numpy scalars leaked).
    json.dumps(responses)


def test_tcp_errors_answer_error_lines_without_killing_the_stream():
    async def scenario():
        server = await start_server(make_service())
        host, port = serve_address(server)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            lines = [b"this is not json\n",
                     json.dumps({"op": "bogus"}).encode() + b"\n",
                     json.dumps({"op": "answer",
                                 "query": {"gpu_name": "k80"}}).encode()
                     + b"\n",
                     json.dumps({"op": "answer", "query": {
                         "gpu_name": "k80", "duration_hours": 1.0,
                         "hour_of_day_utc": 9.0}}).encode() + b"\n"]
            writer.write(b"".join(lines))
            await writer.drain()
            responses = [json.loads(await reader.readline())
                         for _ in lines]
            writer.close()
        finally:
            server.close()
            await server.wait_closed()
        return responses

    bad_json, bad_op, bad_query, good = asyncio.run(scenario())
    assert not bad_json["ok"]
    assert not bad_op["ok"] and "unknown op" in bad_op["error"]
    assert not bad_query["ok"]
    # The stream survived three bad requests and still answers good ones.
    assert good["ok"] and good["result"]["options"]
