"""The online placement service (`repro.serve`) and its transport.

The serving invariants the ISSUE names:

* ``answer_many`` is bit-identical to the same queries issued as
  sequential singles;
* a decision cached at one pool version is structurally unservable after
  the pool moves (stale epochs never leak);
* answers are deterministic under a fixed advisor seed;
* the JSON-lines TCP transport round-trips queries, batches, and stats,
  and answers malformed input with an error line instead of dying.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.scenarios.pool import TransientPool
from repro.serve.service import PlacementService
from repro.serve.transport import (
    IDEMPOTENT_OPS,
    ServerConfig,
    TransportError,
    handle_request,
    request,
    request_with_retry,
    serve_address,
    server_state,
    start_server,
)
from repro.simulation.engine import Simulator

SAMPLES = 50


def make_pool():
    return TransientPool(Simulator(), {("k80", "us-west1"): 2,
                                       ("k80", "europe-west1"): 2})


def make_service(pool=None, seed=0):
    advisor = LaunchAdvisor(samples_per_option=SAMPLES, seed=seed)
    return PlacementService(advisor=advisor, pool=pool)


def queries(count=12):
    return [PlacementQuery(gpu_name="k80",
                           duration_hours=float(1 + index % 4),
                           hour_of_day_utc=float((index * 5) % 24))
            for index in range(count)]


# ---------------------------------------------------------------------------
# Service invariants.
# ---------------------------------------------------------------------------
def test_batch_is_bit_identical_to_sequential_singles():
    batch = asyncio.run(make_service(make_pool()).answer_many(queries()))

    async def singles():
        service = make_service(make_pool())
        return [await service.answer(query) for query in queries()]

    assert batch == asyncio.run(singles())


def test_answers_are_deterministic_under_a_fixed_seed():
    first = asyncio.run(make_service(make_pool(), seed=4).answer_many(
        queries()))
    second = asyncio.run(make_service(make_pool(), seed=4).answer_many(
        queries()))
    assert first == second


def test_stale_epoch_decisions_are_never_served():
    pool = make_pool()
    service = make_service(pool)
    query = queries(1)[0]
    before = service.answer_now(query)
    assert before.pool_version == pool.version
    assert service.answer_now(query) is before  # cached within the epoch

    pool.acquire("k80", "us-west1")  # any transition bumps the version
    after = service.answer_now(query)
    assert after is not before
    assert after.pool_version == pool.version > before.pool_version
    assert service.cache_invalidations == 1
    assert service.stats()["cached_decisions"] == 1  # only the new epoch's
    # The transition consumed a slot, so feasibility actually moved too.
    taken = {option.region_name: option.acquirable
             for option in after.options}
    assert taken["us-west1"] == 1


def test_poolless_service_caches_forever():
    service = make_service(pool=None)
    query = queries(1)[0]
    first = service.answer_now(query)
    assert service.answer_now(query) is first
    assert first.pool_version is None
    assert service.cache_hits == 1 and service.cache_invalidations == 0


def test_answer_now_rejects_non_queries():
    with pytest.raises(ConfigurationError, match="PlacementQuery"):
        make_service().answer_now({"gpu_name": "k80"})


def test_warm_builds_the_full_table_and_steady_state_stays_warm():
    service = make_service(make_pool())
    built = service.warm()
    assert built == len(
        service.advisor.score_table.available_cells()) * 24
    asyncio.run(service.answer_many(queries()))
    assert service.stats()["score_options_built"] == built


def test_stats_counters():
    service = make_service(make_pool())
    asyncio.run(service.answer_many(queries(6) + queries(6)))
    stats = service.stats()
    assert stats["queries_answered"] == 12
    assert stats["cache_hits"] == 6
    assert stats["cached_decisions"] == 6
    assert stats["score_backend"] == "table"
    assert stats["pool_version"] == service.pool.version


# ---------------------------------------------------------------------------
# Transport.
# ---------------------------------------------------------------------------
def test_handle_request_rejects_unknown_ops():
    with pytest.raises(ReproError, match="unknown op"):
        asyncio.run(handle_request(make_service(), {"op": "launch_missiles"}))


def test_tcp_round_trip_matches_in_process_answers():
    async def scenario():
        pool = make_pool()
        service = make_service(pool)
        server = await start_server(service)
        host, port = serve_address(server)
        try:
            documents = [{"op": "answer", "query": queries(1)[0].to_params()},
                         {"op": "answer_many",
                          "queries": [q.to_params() for q in queries(4)]},
                         {"op": "stats"}]
            responses = await request(host, port, documents)
        finally:
            server.close()
            await server.wait_closed()
        return service, responses

    service, responses = asyncio.run(scenario())
    single, batch, stats = responses
    assert single["ok"] and batch["ok"] and stats["ok"]
    # The wire decisions are the in-process decisions' wire format (the
    # cache answers the repeated first query, so numbers line up exactly).
    reference = make_service(make_pool())
    expected = asyncio.run(reference.answer_many(queries(4)))
    assert batch["result"] == [decision.to_params()
                               for decision in expected]
    assert single["result"] == expected[0].to_params()
    assert stats["result"]["queries_answered"] == 5
    # JSON round-tripped cleanly (no numpy scalars leaked).
    json.dumps(responses)


def test_tcp_errors_answer_error_lines_without_killing_the_stream():
    async def scenario():
        server = await start_server(make_service())
        host, port = serve_address(server)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            lines = [b"this is not json\n",
                     json.dumps({"op": "bogus"}).encode() + b"\n",
                     json.dumps({"op": "answer",
                                 "query": {"gpu_name": "k80"}}).encode()
                     + b"\n",
                     json.dumps({"op": "answer", "query": {
                         "gpu_name": "k80", "duration_hours": 1.0,
                         "hour_of_day_utc": 9.0}}).encode() + b"\n"]
            writer.write(b"".join(lines))
            await writer.drain()
            responses = [json.loads(await reader.readline())
                         for _ in lines]
            writer.close()
        finally:
            server.close()
            await server.wait_closed()
        return responses

    bad_json, bad_op, bad_query, good = asyncio.run(scenario())
    assert not bad_json["ok"] and bad_json["code"] == "bad_request"
    assert not bad_op["ok"] and "unknown op" in bad_op["error"]
    assert not bad_query["ok"]
    # The stream survived three bad requests and still answers good ones.
    assert good["ok"] and good["result"]["options"]


# ---------------------------------------------------------------------------
# Hardening: health, timeouts, backpressure, retries (PR 9).
# ---------------------------------------------------------------------------
def test_service_health_reports_uptime_and_epoch():
    service = make_service(make_pool())
    asyncio.run(service.answer_many(queries(3)))
    document = service.health()
    assert document["status"] == "ok"
    assert document["uptime_seconds"] >= 0.0
    assert document["calibration_epoch"] == 0
    assert document["queries_answered"] == 3
    assert document["cached_decisions"] == 3
    json.dumps(document)


def test_health_op_merges_transport_queue_depth():
    async def scenario():
        server = await start_server(
            make_service(), config=ServerConfig(max_connections=7))
        host, port = serve_address(server)
        try:
            return await request(host, port, [{"op": "health"}])
        finally:
            server.close()
            await server.wait_closed()

    response = asyncio.run(scenario())[0]
    assert response["ok"]
    document = response["result"]
    assert document["status"] == "ok"
    assert document["connections"] == 1  # the probing connection itself
    assert document["in_flight"] == 1    # the health request itself
    assert document["max_connections"] == 7
    assert document["requests_seen"] == 1


def test_server_config_validation():
    with pytest.raises(ConfigurationError):
        ServerConfig(request_timeout=0)
    with pytest.raises(ConfigurationError):
        ServerConfig(max_connections=0)


def test_slow_dispatch_answers_a_timeout_error_line(monkeypatch):
    """A hung dispatch (chaos serve_hang) burns the real wait_for window
    and answers a structured 'timeout' line; the server stays up."""
    monkeypatch.setenv("REPRO_CHAOS", "serve_hang:at=1,seconds=30")

    async def scenario():
        server = await start_server(
            make_service(), config=ServerConfig(request_timeout=0.2))
        host, port = serve_address(server)
        try:
            return await request(host, port,
                                 [{"op": "stats"}, {"op": "stats"}],
                                 timeout=10.0)
        finally:
            server.close()
            await server.wait_closed()

    hung, healthy = asyncio.run(scenario())
    assert not hung["ok"] and hung["code"] == "timeout"
    assert "timed out" in hung["error"]
    assert healthy["ok"], "the connection must survive a timed-out request"


def test_connection_cap_answers_overloaded_and_recovers():
    async def scenario():
        server = await start_server(
            make_service(), config=ServerConfig(max_connections=1))
        host, port = serve_address(server)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
            await writer.drain()
            await reader.readline()  # the slot is now held open
            # A second connection is rejected with one structured line.
            reader2, writer2 = await asyncio.open_connection(host, port)
            rejected = json.loads(await reader2.readline())
            assert (await reader2.readline()) == b""  # then closed
            writer2.close()
            # Releasing the slot lets new connections through again.
            writer.close()
            await writer.wait_closed()
            recovered = await request(host, port, [{"op": "stats"}])
            state = server_state(server)
            return rejected, recovered[0], state.rejected_connections
        finally:
            server.close()
            await server.wait_closed()

    rejected, recovered, rejections = asyncio.run(scenario())
    assert not rejected["ok"] and rejected["code"] == "overloaded"
    assert recovered["ok"]
    assert rejections == 1


def test_injected_reset_raises_transport_error_without_retry(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "serve_reset:at=1")

    async def scenario():
        server = await start_server(make_service())
        host, port = serve_address(server)
        try:
            with pytest.raises(TransportError, match="mid-response"):
                await request(host, port, [{"op": "stats"}])
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_retrying_client_converges_through_injected_resets(monkeypatch):
    """Two injected connection resets; the retrying client converges on
    the third attempt with the deterministic (seeded-jitter) backoff."""
    monkeypatch.setenv("REPRO_CHAOS", "serve_reset:at=1;serve_reset:at=2;seed=7")

    async def scenario():
        server = await start_server(make_service())
        host, port = serve_address(server)
        try:
            responses = await request_with_retry(
                host, port, [{"op": "stats"}], retries=3,
                backoff_seconds=0.01)
            return responses, server_state(server).requests_seen
        finally:
            server.close()
            await server.wait_closed()

    responses, seen = asyncio.run(scenario())
    assert responses[0]["ok"]
    assert seen == 3  # two resets + the answered attempt


def test_retry_reaches_a_server_that_comes_up_late():
    """Connect errors are retried: the server starts only after the first
    attempt has already failed."""
    async def scenario():
        service = make_service()
        probe = await start_server(service)
        host, port = serve_address(probe)
        probe.close()
        await probe.wait_closed()  # the port is now free and refusing

        server = None

        async def bring_up():
            nonlocal server
            await asyncio.sleep(0.15)
            server = await start_server(service, host=host, port=port)

        task = asyncio.ensure_future(bring_up())
        try:
            return await request_with_retry(
                host, port, [{"op": "stats"}], retries=5,
                backoff_seconds=0.05, jitter_seed=1)
        finally:
            await task
            server.close()
            await server.wait_closed()

    assert asyncio.run(scenario())[0]["ok"]


def test_non_idempotent_ops_get_exactly_one_attempt(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "serve_reset:at=1")
    assert "recalibrate" not in IDEMPOTENT_OPS

    async def scenario():
        server = await start_server(make_service())
        host, port = serve_address(server)
        try:
            with pytest.raises(TransportError):
                await request_with_retry(
                    host, port, [{"op": "recalibrate"}], retries=5,
                    backoff_seconds=0.01)
            return server_state(server).requests_seen
        finally:
            server.close()
            await server.wait_closed()

    assert asyncio.run(scenario()) == 1  # no second attempt happened


def test_retry_rejects_negative_budget():
    with pytest.raises(ConfigurationError):
        asyncio.run(request_with_retry("127.0.0.1", 1, [{"op": "stats"}],
                                       retries=-1))


def test_query_connect_refused_is_a_one_line_diagnostic(capsys):
    from repro.serve.cli import main

    code = main(["query", "k80", "--duration", "2", "--utc-hour", "9",
                 "--connect", "127.0.0.1:1", "--retries", "0",
                 "--timeout", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error: cannot reach placement server")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err


def test_query_connect_bad_address_is_an_argparse_error(capsys):
    from repro.serve.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["query", "k80", "--duration", "2",
                                   "--utc-hour", "9", "--connect", "nope"])
