"""Tests for the parallel sweep-orchestration subsystem."""

import json
import warnings

import pytest

from repro.errors import ConfigurationError, DataError
from repro.measurement.speed_campaign import run_speed_campaign
from repro.sweeps import (
    SweepCache,
    SweepExecutionError,
    SweepRunner,
    SweepSpec,
    get_sweep,
    list_sweeps,
)
from repro.sweeps.cache import MISS
from repro.sweeps.cli import main


def _probe_cell(cell, streams, context):
    """Cheap deterministic cell: arithmetic plus one named random draw."""
    value = cell.params["x"] * cell.params["factor"]
    noise = float(streams.get("noise").normal())
    extra = 0 if context is None else context
    return {"value": value + extra, "noise": noise, "pair": [cell.params["x"], value]}


#: Cell x-values _flaky_cell should fail on (set by tests; serial runs only,
#: so the in-process global is visible to the executing cell).
_FAIL_ON = set()


def _flaky_cell(cell, streams, context):
    """Fails on demand to exercise partial-run resume with unchanged code."""
    if cell.params["x"] in _FAIL_ON:
        raise ValueError("injected failure")
    return _probe_cell(cell, streams, context)


# ---------------------------------------------------------------------------
# Spec → grid expansion.
# ---------------------------------------------------------------------------
def test_spec_expands_row_major_with_fixed_params():
    spec = SweepSpec("probe", axes={"x": [10, 20], "y": ["a", "b", "c"]},
                     fixed={"factor": 2})
    assert len(spec) == 6
    assert spec.shape == (2, 3)
    assert spec.axis_names == ("x", "y")
    cells = spec.cells()
    assert [cell.index for cell in cells] == list(range(6))
    # Row-major: the last axis varies fastest.
    assert [(cell.params["x"], cell.params["y"]) for cell in cells] == [
        (10, "a"), (10, "b"), (10, "c"), (20, "a"), (20, "b"), (20, "c")]
    assert all(cell.params["factor"] == 2 for cell in cells)
    assert cells[3].coords == (1, 0)


def test_spec_validation_errors():
    with pytest.raises(ConfigurationError):
        SweepSpec("", axes={"x": [1]})
    with pytest.raises(ConfigurationError):
        SweepSpec("probe", axes={})
    with pytest.raises(ConfigurationError):
        SweepSpec("probe", axes={"x": []})
    with pytest.raises(ConfigurationError):
        SweepSpec("probe", axes={"x": [1]}, fixed={"x": 2})
    with pytest.raises(ConfigurationError):
        SweepSpec("probe", axes={"x": [object()]})
    with pytest.raises(ConfigurationError):
        SweepSpec("probe", axes={"x": [1, 1]})


def test_cells_do_not_alias_mutable_values():
    spec = SweepSpec("probe", axes={"launch": [{"gpu": "k80", "count": 3}]},
                     fixed={"extras": [1, 2]})
    first = spec.cells()[0]
    first.params["launch"]["count"] = 999
    first.params["extras"].append(3)
    # Neither the spec nor a later expansion sees the mutation.
    assert spec.axes["launch"][0]["count"] == 3
    fresh = spec.cells()[0]
    assert fresh.params["launch"]["count"] == 3
    assert fresh.params["extras"] == [1, 2]


def test_spec_with_axes_override():
    spec = SweepSpec("probe", axes={"x": [1, 2], "y": [3]})
    shrunk = spec.with_axes(x=[9])
    assert len(shrunk) == 1
    assert shrunk.cells()[0].params == {"x": 9, "y": 3}
    with pytest.raises(ConfigurationError):
        spec.with_axes(z=[1])


# ---------------------------------------------------------------------------
# Deterministic per-cell seeding.
# ---------------------------------------------------------------------------
def test_cell_seed_depends_on_params_not_position():
    wide = SweepSpec("probe", axes={"x": [10, 20, 30]}, fixed={"factor": 1})
    narrow = SweepSpec("probe", axes={"x": [30]}, fixed={"factor": 1})
    wide_last = wide.cells()[-1]
    narrow_only = narrow.cells()[0]
    assert wide_last.index != narrow_only.index
    assert wide_last.seed(7) == narrow_only.seed(7)
    assert wide_last.seed(7) != wide_last.seed(8)
    assert wide.cells()[0].seed(7) != wide.cells()[1].seed(7)


def test_serial_and_parallel_runs_are_bit_identical():
    spec = SweepSpec("probe", axes={"x": list(range(12))}, fixed={"factor": 3})
    serial = SweepRunner(workers=1, seed=5).run(spec, _probe_cell)
    parallel = SweepRunner(workers=4, seed=5).run(spec, _probe_cell)
    assert serial.payloads() == parallel.payloads()
    assert [r.seed for r in serial] == [r.seed for r in parallel]
    # Tuples are canonicalized to lists on both paths.
    assert serial.payloads()[0]["pair"] == [0, 0]


def test_speed_campaign_parallel_matches_serial(catalog):
    serial = run_speed_campaign(model_names=("resnet_15", "resnet_32"),
                                gpu_names=("k80", "p100"), steps=400, seed=9,
                                catalog=catalog)
    parallel = run_speed_campaign(model_names=("resnet_15", "resnet_32"),
                                  gpu_names=("k80", "p100"), steps=400, seed=9,
                                  catalog=catalog, workers=4)
    assert serial.cells == parallel.cells
    assert serial.speed_series == parallel.speed_series
    assert ([m.step_time for m in serial.measurements()]
            == [m.step_time for m in parallel.measurements()])


# ---------------------------------------------------------------------------
# Cache behaviour.
# ---------------------------------------------------------------------------
def test_cache_hit_miss_and_reuse(tmp_path):
    spec = SweepSpec("probe", axes={"x": [1, 2, 3]}, fixed={"factor": 2})
    cold = SweepRunner(workers=1, cache_dir=tmp_path, seed=3).run(spec, _probe_cell)
    assert cold.cache_hits == 0 and cold.cache_misses == 3

    warm = SweepRunner(workers=1, cache_dir=tmp_path, seed=3).run(spec, _probe_cell)
    assert warm.cache_hits == 3 and warm.cache_misses == 0
    assert warm.payloads() == cold.payloads()

    # A different root seed misses (results would differ).
    reseeded = SweepRunner(workers=1, cache_dir=tmp_path, seed=4).run(
        spec, _probe_cell)
    assert reseeded.cache_hits == 0
    assert reseeded.payloads() != cold.payloads()

    # Extending an axis only computes the new cells.
    extended = SweepRunner(workers=1, cache_dir=tmp_path, seed=3).run(
        spec.with_axes(x=[1, 2, 3, 4]), _probe_cell)
    assert extended.cache_hits == 3 and extended.cache_misses == 1
    assert extended.payloads()[:3] == cold.payloads()


class _TaggedContext:
    """Context stub whose fingerprint and effect on payloads both vary."""

    def __init__(self, tag, extra):
        self.tag = tag
        self.extra = extra

    def fingerprint(self):
        return self.tag


def _context_cell(cell, streams, context):
    return {"value": cell.params["x"] + context.extra}


def test_cache_keys_include_context_fingerprint(tmp_path):
    spec = SweepSpec("probe", axes={"x": [1, 2]})
    first = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _context_cell, context=_TaggedContext("a", 0))
    assert first.cache_misses == 2

    # A different context fingerprint must not hit the first run's entries.
    other = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _context_cell, context=_TaggedContext("b", 100))
    assert other.cache_hits == 0
    assert other.payloads() != first.payloads()

    # Same fingerprint hits again.
    again = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _context_cell, context=_TaggedContext("a", 0))
    assert again.cache_hits == 2
    assert again.payloads() == first.payloads()


def test_catalog_fingerprint_is_stable(catalog):
    from repro.workloads.catalog import default_catalog

    assert catalog.fingerprint() == default_catalog().fingerprint()
    assert len(catalog.fingerprint()) == 16


def test_cache_keys_include_cell_function(tmp_path):
    spec = SweepSpec("probe", axes={"x": [1]}, fixed={"factor": 1})
    SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(spec, _probe_cell)
    # A different cell function must not hit the first function's entries,
    # even though the spec, seed, and context all match.
    other = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _flaky_cell)
    assert other.cache_hits == 0


def test_cache_keys_include_core_path_toggle(tmp_path, monkeypatch):
    """Flipping REPRO_CORE_FASTFORWARD must miss, not reuse, cached cells."""
    monkeypatch.delenv("REPRO_CORE_FASTFORWARD", raising=False)
    spec = SweepSpec("probe", axes={"x": [1]}, fixed={"factor": 1})
    cold = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(spec, _probe_cell)
    assert cold.cache_misses == 1

    # The chunked core path is a different compute configuration: results
    # are only contractually identical, so the cache must not mix payloads.
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "0")
    flipped = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _probe_cell)
    assert flipped.cache_hits == 0 and flipped.cache_misses == 1

    # The *effective* setting is fingerprinted: every spelling of "off"
    # shares one key, and every spelling of "on" (or unset) shares another.
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "false")
    assert SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _probe_cell).cache_hits == 1
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "1")
    assert SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _probe_cell).cache_hits == 1


def test_cache_keys_include_fleet_shards(tmp_path, monkeypatch):
    """Flipping REPRO_FLEET_SHARDS must miss, not reuse, cached cells:
    sharded and single-process payloads are only contractually identical,
    so a warm cache must never mix compute configurations."""
    monkeypatch.delenv("REPRO_FLEET_SHARDS", raising=False)
    spec = SweepSpec("probe", axes={"x": [1]}, fixed={"factor": 1})
    cold = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(spec, _probe_cell)
    assert cold.cache_misses == 1

    monkeypatch.setenv("REPRO_FLEET_SHARDS", "4")
    flipped = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _probe_cell)
    assert flipped.cache_hits == 0 and flipped.cache_misses == 1

    # The *effective* setting is fingerprinted: an explicit "1" is the
    # default and shares the unset key.
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "1")
    assert SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _probe_cell).cache_hits == 1
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "4")
    assert SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
        spec, _probe_cell).cache_hits == 1


def test_cache_ignores_corrupt_entries(tmp_path):
    spec = SweepSpec("probe", axes={"x": [1]}, fixed={"factor": 2})
    runner = SweepRunner(workers=1, cache_dir=tmp_path, seed=0)
    first = runner.run(spec, _probe_cell)
    # Corrupt the entry the runner actually wrote — e.g. a worker killed
    # mid-write leaving a truncated file: invalid JSON,
    # valid-JSON-wrong-shape, and missing-payload contents are all treated
    # as misses (with a warning naming the file), never crashes, and the
    # recomputed cell overwrites the poisoned entry.
    cache = SweepCache(tmp_path)
    path = next(tmp_path.glob("probe/*.json"))
    for garbage in ("{not json", '{"version": 1, "trunc', "null", "[]",
                    '{"version": 1}'):
        path.write_text(garbage)
        with pytest.warns(RuntimeWarning, match="sweep-cache cell"):
            again = SweepRunner(workers=1, cache_dir=tmp_path, seed=0).run(
                spec, _probe_cell)
        assert again.cache_misses == 1
        assert again.payloads() == first.payloads()
    # An entry from an older cache format version is a *silent* miss (not
    # corruption), and an absent entry also misses cleanly.
    cell = spec.cells()[0]
    stale = cache.path_for(cell, 0, None)
    stale.parent.mkdir(parents=True, exist_ok=True)
    stale.write_text('{"version": -1, "payload": 42, "params": {}}')
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert cache.get(cell, 0, None) is MISS
        assert cache.get(cell, 0, "no-such-context") is MISS


def test_resume_after_partial_run(tmp_path):
    spec = SweepSpec("probe", axes={"x": [10, 20, 30, 40]}, fixed={"factor": 1})
    _FAIL_ON.add(30)
    try:
        with pytest.raises(SweepExecutionError) as excinfo:
            SweepRunner(workers=1, cache_dir=tmp_path, seed=1).run(
                spec, _flaky_cell)
    finally:
        _FAIL_ON.discard(30)
    assert "x=30" in str(excinfo.value)
    # Cells completed before the failure were persisted.
    assert SweepCache(tmp_path).entry_count("probe") == 2

    resumed = SweepRunner(workers=1, cache_dir=tmp_path, seed=1).run(
        spec, _flaky_cell)
    assert resumed.cache_hits == 2 and resumed.cache_misses == 2
    fresh = SweepRunner(workers=1, seed=1).run(spec, _flaky_cell)
    assert resumed.payloads() == fresh.payloads()


def _slow_or_fail_cell(cell, streams, context):
    """'fail' cells raise immediately; others take long enough to be in
    flight when the failure lands."""
    import time

    if cell.params["x"] == "fail":
        raise ValueError("boom")
    time.sleep(0.3)
    return {"ok": cell.params["x"]}


def test_parallel_failure_keeps_completed_cells_cached(tmp_path):
    spec = SweepSpec("probe2", axes={"x": ["slow", "fail"]})
    with pytest.raises(SweepExecutionError) as excinfo:
        SweepRunner(workers=2, cache_dir=tmp_path, seed=0).run(
            spec, _slow_or_fail_cell)
    assert "x=fail" in str(excinfo.value)
    # The in-flight 'slow' cell finished and was cached despite the failure.
    assert SweepCache(tmp_path).entry_count("probe2") == 1


# ---------------------------------------------------------------------------
# Results and aggregation helpers.
# ---------------------------------------------------------------------------
def test_result_accessors_and_tables():
    spec = SweepSpec("probe", axes={"x": [1, 2], "y": [5]}, fixed={"factor": 10})
    result = SweepRunner(workers=1, seed=0).run(spec, _probe_cell)
    assert result.payload(x=1, y=5)["value"] == 10
    with pytest.raises(KeyError):
        result.payload(x=99)
    with pytest.raises(KeyError):
        result.payload(y=5)  # ambiguous: matches two cells
    assert len(result.select(y=5)) == 2
    groups = result.group_by("x")
    assert list(groups) == [1, 2]
    with pytest.raises(DataError):
        result.group_by("nope")
    table = result.to_table(["value"], title="probe table")
    assert "probe table" in table and "value" in table
    assert result.summary().startswith("sweep 'probe': 2 cells")


def test_runner_rejects_bad_workers():
    with pytest.raises(ConfigurationError):
        SweepRunner(workers=-1)


# ---------------------------------------------------------------------------
# Registry and CLI.
# ---------------------------------------------------------------------------
def test_registry_lists_builtin_campaign_sweeps():
    names = {definition.name for definition in list_sweeps()}
    assert {"speed", "cluster_scaling", "worker_step_time", "checkpoint",
            "revocation", "replacement_overhead", "recomputation",
            "startup_breakdown", "replacement_startup"} <= names
    with pytest.raises(ConfigurationError):
        get_sweep("no-such-sweep")


def test_cli_list_and_run(tmp_path, capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "replacement_startup" in out and "speed" in out

    json_path = tmp_path / "out.json"
    code = main(["run", "replacement_startup", "--workers", "2",
                 "--cache-dir", str(tmp_path / "cache"), "--seed", "4",
                 "--set", "gpu_name=k80", "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 cells" in out and "2 computed" in out
    data = json.loads(json_path.read_text())
    assert data["sweep"] == "replacement_startup"
    assert len(data["cells"]) == 2

    assert main(["resume", "replacement_startup", "--seed", "4"]) == 2
    code = main(["resume", "replacement_startup", "--seed", "4",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--set", "gpu_name=k80"])
    assert code == 0
    assert "2 cached, 0 computed" in capsys.readouterr().out

    assert main(["run", "no-such-sweep"]) == 1
    assert "unknown sweep" in capsys.readouterr().err

    code = main(["run", "replacement_startup", "--workers", "auto",
                 "--seed", "4", "--set", "gpu_name=k80"])
    assert code == 0
    assert "2 cells" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        main(["run", "replacement_startup", "--workers", "lots"])
