"""Tests for the CM-DARE controller, resource manager, and experiment driver."""

import pytest

from repro.cloud.provider import SimulatedCloudProvider
from repro.cmdare.controller import CMDareController, ControllerConfig
from repro.cmdare.experiment import run_training_experiment
from repro.cmdare.resource_manager import ResourceManager
from repro.errors import ConfigurationError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob, measurement_job
from repro.training.session import TrainingSession


def make_session(profile, cluster, steps=2000, seed=0):
    return TrainingSession(Simulator(), cluster, measurement_job(profile, steps=steps),
                           streams=RandomStreams(seed))


def test_controller_replaces_revoked_worker(resnet15_profile):
    cluster = ClusterSpec.from_counts(k80=2)
    session = make_session(resnet15_profile, cluster, steps=3000)
    controller = CMDareController(session)
    controller.start_monitoring()
    session.start()
    session.simulator.run(until=20.0)
    session.handle_revocation("worker-1")
    trace = session.run_to_completion()
    assert trace.num_replacements == 1
    summary = controller.summary()
    assert summary["num_revocations_seen"] == 1
    assert summary["num_replacements"] == 1
    # The replacement pays a cold-start overhead of tens of seconds.
    assert trace.replacement_records[0].overhead_seconds > 40.0


def test_controller_poll_loop_drains_with_the_session(resnet15_profile):
    """A poll scheduled just before the workload ends must not leak.

    The poll loop used to reschedule itself unconditionally, so the run
    finished with a live ``cmdare:poll`` event in the heap and a stale
    ``_monitoring`` flag that blocked a later ``start_monitoring``.
    """
    cluster = ClusterSpec.from_counts(k80=2)
    session = make_session(resnet15_profile, cluster, steps=2000)
    controller = CMDareController(session)
    controller.start_monitoring()
    session.run_to_completion()
    assert session.simulator.pending_events() == 0
    assert controller._monitoring is False
    # Restarting after the session finished is a clean no-op.
    controller.start_monitoring()
    assert session.simulator.pending_events() == 0
    assert controller._monitoring is False


def test_controller_stop_monitoring_cancels_pending_poll(resnet15_profile):
    cluster = ClusterSpec.from_counts(k80=1)
    session = make_session(resnet15_profile, cluster, steps=2000)
    controller = CMDareController(session)
    session.start()
    controller.start_monitoring()
    pending_with_poll = session.simulator.pending_events()
    controller.stop_monitoring()
    assert session.simulator.pending_events() == pending_with_poll - 1
    # start/stop cycles stay balanced: monitoring can restart cleanly.
    controller.start_monitoring()
    assert controller._monitoring is True
    session.run_to_completion()
    assert session.simulator.pending_events() == 0


def test_controller_predicted_speed_is_sum_of_workers(resnet32_profile):
    cluster = ClusterSpec.from_counts(p100=4)
    session = make_session(resnet32_profile, cluster)
    controller = CMDareController(session)
    single = session.step_time_model.mean_speed(resnet32_profile.gflops, "p100")
    assert controller.predicted_speed() == pytest.approx(4 * single, rel=1e-6)


def test_controller_detects_and_mitigates_bottleneck(resnet32_profile):
    cluster = ClusterSpec.from_counts(p100=8)
    session = make_session(resnet32_profile, cluster, steps=6000, seed=2)
    config = ControllerConfig(auto_mitigate_bottleneck=True, poll_interval_seconds=10.0)
    controller = CMDareController(session, config=config)
    controller.start_monitoring()
    trace = session.run_to_completion()
    summary = controller.summary()
    assert summary["num_bottleneck_flags"] >= 1
    assert summary["extra_parameter_servers"] == 1
    assert session.ps_group.count == 2
    assert trace.total_steps >= 6000


def test_controller_no_mitigation_by_default(resnet32_profile):
    cluster = ClusterSpec.from_counts(p100=8)
    session = make_session(resnet32_profile, cluster, steps=4000, seed=2)
    controller = CMDareController(session)
    controller.start_monitoring()
    session.run_to_completion()
    assert session.ps_group.count == 1


def test_controller_invalid_config(resnet15_profile):
    session = make_session(resnet15_profile, ClusterSpec.single("k80"))
    with pytest.raises(ConfigurationError):
        CMDareController(session, config=ControllerConfig(poll_interval_seconds=0.0))


def test_resource_manager_provisions_cluster():
    simulator = Simulator()
    provider = SimulatedCloudProvider(simulator, streams=RandomStreams(4))
    manager = ResourceManager(provider)
    spec = ClusterSpec.from_counts(k80=2, num_parameter_servers=2)
    cluster = manager.provision(spec)
    assert len(cluster.parameter_servers) == 2
    assert len(cluster.workers) == 2
    simulator.run(until=300.0)
    assert cluster.num_running_workers == 2
    assert manager.cluster_cost(cluster) > 0
    manager.release(cluster)
    assert all(not instance.is_alive for instance in cluster.all_instances())


def test_resource_manager_replacement_request():
    simulator = Simulator()
    provider = SimulatedCloudProvider(simulator, streams=RandomStreams(4))
    manager = ResourceManager(provider)
    from repro.training.cluster import WorkerSpec

    instance = manager.request_replacement(WorkerSpec(gpu_name="p100"), label="worker-9")
    assert instance.labels["name"] == "worker-9"
    ps = manager.add_parameter_server(manager.provision(ClusterSpec.single("k80")))
    assert ps.labels["role"] == "ps"


def test_run_training_experiment_basic(resnet32_profile):
    result = run_training_experiment(ClusterSpec.single("k80"),
                                     measurement_job(resnet32_profile, steps=1000),
                                     seed=1)
    assert result.cluster_speed == pytest.approx(4.56, rel=0.06)
    assert result.duration_seconds > 0
    assert result.controller is not None
    assert result.total_cost_usd == 0.0
    assert result.metadata["model"] == "resnet_32"


def test_run_training_experiment_with_provider_accrues_cost(resnet15_profile):
    job = TrainingJob(profile=resnet15_profile, total_steps=3000,
                      checkpoint_interval_steps=10_000)
    result = run_training_experiment(ClusterSpec.from_counts(k80=1), job, seed=3,
                                     with_provider=True)
    assert result.provider is not None
    assert result.total_cost_usd > 0
    # A short run on one preemptible K80 plus one PS costs well under a dollar.
    assert result.total_cost_usd < 1.0


def test_run_training_experiment_deterministic(resnet32_profile):
    job = measurement_job(resnet32_profile, steps=600)
    first = run_training_experiment(ClusterSpec.single("k80"), job, seed=11)
    second = run_training_experiment(ClusterSpec.single("k80"), job, seed=11)
    assert first.duration_seconds == pytest.approx(second.duration_seconds)
