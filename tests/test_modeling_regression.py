"""Tests for linear regression, kernels, SVR, and model selection."""

import numpy as np
import pytest

from repro.errors import DataError, ModelingError, NotFittedError
from repro.modeling.kernels import linear_kernel, polynomial_kernel, rbf_kernel
from repro.modeling.linear import LinearRegression
from repro.modeling.metrics import mean_absolute_error
from repro.modeling.model_selection import (
    KFold,
    PAPER_C_GRID,
    PAPER_EPSILON_GRID,
    cross_validate_mae,
    grid_search_svr,
    train_test_split,
)
from repro.modeling.svr import SVR


def test_linear_regression_exact_fit():
    x = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = 2.0 * x.ravel() + 1.0
    model = LinearRegression().fit(x, y)
    assert model.coef_[0] == pytest.approx(2.0)
    assert model.intercept_ == pytest.approx(1.0)
    assert model.predict([[10.0]])[0] == pytest.approx(21.0)
    assert model.score_mae(x, y) == pytest.approx(0.0, abs=1e-10)


def test_linear_regression_multivariate():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(50, 2))
    y = 3.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5
    model = LinearRegression().fit(x, y)
    assert np.allclose(model.coef_, [3.0, -1.5], atol=1e-8)


def test_linear_regression_validation():
    with pytest.raises(NotFittedError):
        LinearRegression().predict([[1.0]])
    with pytest.raises(DataError):
        LinearRegression().fit([[1.0], [2.0]], [1.0])
    with pytest.raises(DataError):
        LinearRegression().fit([[1.0, 2.0]], [1.0])
    model = LinearRegression().fit([[1.0], [2.0], [3.0]], [1.0, 2.0, 3.0])
    with pytest.raises(DataError):
        model.predict([[1.0, 2.0]])


def test_kernels_basic_properties():
    a = np.array([[1.0, 0.0], [0.0, 1.0]])
    assert np.allclose(linear_kernel(a, a), a @ a.T)
    poly = polynomial_kernel(a, a, degree=2, coef0=1.0, gamma=1.0)
    assert poly[0, 0] == pytest.approx(4.0)
    rbf = rbf_kernel(a, a, gamma=0.5)
    assert np.allclose(np.diag(rbf), 1.0)
    assert rbf[0, 1] == pytest.approx(np.exp(-1.0))
    with pytest.raises(DataError):
        rbf_kernel(a, a, gamma=0.0)
    with pytest.raises(DataError):
        polynomial_kernel(a, a, degree=0)


def test_svr_fits_linear_relationship():
    rng = np.random.default_rng(1)
    x = np.linspace(0, 1, 18).reshape(-1, 1)
    y = 0.4 + 1.1 * x.ravel() + 0.01 * rng.normal(size=18)
    for kernel in ("linear", "poly", "rbf"):
        model = SVR(kernel=kernel, C=50.0, epsilon=0.01).fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.05, kernel
        assert model.n_support_ > 0


def test_svr_fits_nonlinear_better_with_rbf():
    x = np.linspace(0, 1, 20).reshape(-1, 1)
    y = np.sin(3 * x.ravel())
    linear_mae = SVR(kernel="linear", C=50, epsilon=0.01).fit(x, y).score_mae(x, y)
    rbf_mae = SVR(kernel="rbf", C=50, epsilon=0.01, gamma=10.0).fit(x, y).score_mae(x, y)
    assert rbf_mae < linear_mae


def test_svr_validation_and_errors():
    with pytest.raises(ModelingError):
        SVR(C=0.0)
    with pytest.raises(ModelingError):
        SVR(epsilon=-0.1)
    with pytest.raises(ModelingError):
        SVR(kernel="sigmoid").fit([[0.0], [1.0]], [0.0, 1.0])
    with pytest.raises(NotFittedError):
        SVR().predict([[1.0]])
    with pytest.raises(DataError):
        SVR().fit([[1.0]], [1.0])
    model = SVR().fit([[0.0], [1.0], [2.0]], [0.0, 1.0, 2.0])
    with pytest.raises(DataError):
        model.predict([[0.0, 1.0]])


def test_train_test_split_ratio_and_determinism():
    x = np.arange(20).reshape(-1, 1)
    y = np.arange(20, dtype=float)
    rng = np.random.default_rng(0)
    train_x, test_x, train_y, test_y = train_test_split(x, y, 0.2, rng)
    assert len(test_x) == 4 and len(train_x) == 16
    assert set(train_y) | set(test_y) == set(y)
    again = train_test_split(x, y, 0.2, np.random.default_rng(0))
    assert np.allclose(again[1], test_x)
    with pytest.raises(DataError):
        train_test_split(x, y, 1.5)


def test_kfold_covers_all_samples_once():
    splitter = KFold(n_splits=5, rng=np.random.default_rng(0))
    seen = []
    for train_idx, val_idx in splitter.split(23):
        assert set(train_idx) & set(val_idx) == set()
        seen.extend(val_idx.tolist())
    assert sorted(seen) == list(range(23))
    with pytest.raises(DataError):
        KFold(n_splits=1)
    with pytest.raises(DataError):
        list(KFold(n_splits=10).split(5))


def test_cross_validate_mae_reasonable():
    x = np.linspace(0, 1, 20).reshape(-1, 1)
    y = 2.0 * x.ravel() + 0.5
    result = cross_validate_mae(LinearRegression, x, y, n_splits=5,
                                rng=np.random.default_rng(0))
    assert result.mean_mae < 1e-6
    assert len(result.fold_maes) == 5


def test_paper_grids_match_section_iii():
    assert PAPER_C_GRID == tuple(float(c) for c in range(10, 101, 10))
    assert PAPER_EPSILON_GRID[0] == 0.01
    assert PAPER_EPSILON_GRID[-1] == 0.1
    assert len(PAPER_EPSILON_GRID) == 10


def test_grid_search_selects_low_mae_configuration():
    rng = np.random.default_rng(2)
    x = np.linspace(0, 1, 16).reshape(-1, 1)
    y = 0.2 + 0.8 * x.ravel() + 0.02 * rng.normal(size=16)
    result = grid_search_svr(x, y, kernel="rbf", C_grid=(10.0, 100.0),
                             epsilon_grid=(0.01, 0.1), n_splits=4,
                             rng=np.random.default_rng(0))
    assert result.best_C in (10.0, 100.0)
    assert result.best_epsilon in (0.01, 0.1)
    assert len(result.results) == 4
    assert result.best_mae == min(mae for _, mae in result.results)
    with pytest.raises(DataError):
        grid_search_svr(x, y, C_grid=(), epsilon_grid=(0.01,))
