"""Hour-of-day consistency audit (simulator clock ↔ regions ↔ revocations).

The simulator tracks UTC hours, regions convert to local hours, and the
revocation model resamples by local hour (Fig. 9).  These tests pin the
end-to-end agreement of those conversions, including the float-modulo edge
where ``x % 24.0`` can return 24.0 itself for tiny negative ``x``.
"""

import numpy as np
import pytest

from repro.cloud.regions import get_region, list_regions
from repro.cloud.revocation import (
    HOURLY_REVOCATION_WEIGHTS,
    RevocationModel,
)
from repro.measurement.revocation_campaign import run_revocation_campaign
from repro.simulation.engine import Simulator
from repro.units import hour_bin, wrap_hour


# ---------------------------------------------------------------------------
# The wrapping helpers.
# ---------------------------------------------------------------------------
def test_wrap_hour_stays_in_half_open_range():
    # The raw float modulo rounds up to the modulus for tiny negatives;
    # wrap_hour must never return 24.0.
    assert -1e-18 % 24.0 == 24.0  # the trap being guarded against
    for value in (-1e-18, -1e-9, -0.0, 0.0, 23.999999, 24.0, -24.0,
                  1e9, -1e9, 47.5, -47.5):
        wrapped = wrap_hour(value)
        assert 0.0 <= wrapped < 24.0, value
    assert wrap_hour(-1e-18) == 0.0
    assert wrap_hour(25.5) == pytest.approx(1.5)
    assert wrap_hour(-5.0) == pytest.approx(19.0)


def test_hour_bin_floors_instead_of_truncating():
    assert hour_bin(10.9) == 10
    assert hour_bin(23.999) == 23
    # int() truncation would put -0.5 in bin 0; the wrapped floor puts it
    # in bin 23, agreeing with wrap_hour(-0.5) == 23.5.
    assert hour_bin(-0.5) == 23
    assert hour_bin(-1e-18) == 0
    assert all(0 <= hour_bin(h) < 24 for h in np.linspace(-100, 100, 999))


# ---------------------------------------------------------------------------
# Simulator clock and region conversion.
# ---------------------------------------------------------------------------
def test_simulator_epoch_normalization_and_negative_lookback():
    sim = Simulator(epoch_hour_utc=-5.0)
    assert sim.epoch_hour_utc == pytest.approx(19.0)
    # Tiny negative epochs hit the float-modulo edge; the clock must still
    # report a valid hour.
    edge = Simulator(epoch_hour_utc=-1e-18)
    assert 0.0 <= edge.epoch_hour_utc < 24.0
    assert 0.0 <= edge.hour_of_day_utc() < 24.0
    # Looking up hours before the epoch (negative `at`) and far beyond it
    # both wrap into [0, 24).
    sim2 = Simulator(epoch_hour_utc=0.25)
    for at in (-900.0 - 1e-13, -900.0, -1e-6, 0.0, 400 * 24 * 3600.0):
        assert 0.0 <= sim2.hour_of_day_utc(at) < 24.0
    assert sim2.hour_of_day_utc(-3600.0) == pytest.approx(23.25)


def test_region_local_hour_agrees_with_utc_clock_end_to_end():
    """UTC clock → region conversion matches one combined wrap, always."""
    sim = Simulator(epoch_hour_utc=23.75)
    sim.schedule(30 * 60.0, lambda s: None)
    sim.run()
    for region in list_regions():
        local = region.local_hour(sim.hour_of_day_utc())
        expected = wrap_hour(23.75 + 0.5 + region.utc_offset_hours)
        assert local == pytest.approx(expected)
        assert 0.0 <= local < 24.0
    # Negative-offset regions near midnight UTC wrap backwards correctly.
    assert get_region("us-west1").local_hour(2.0) == pytest.approx(18.0)
    assert get_region("asia-east1").local_hour(23.0) == pytest.approx(7.0)


# ---------------------------------------------------------------------------
# Revocation model: local launch hour → local revocation hour.
# ---------------------------------------------------------------------------
def test_revocation_hour_consistent_with_launch_hour_and_lifetime():
    """revocation_hour_local must equal wrap(launch + lifetime), binned
    exactly like the resampling weights index it."""
    model = RevocationModel(rng=np.random.default_rng(42))
    for launch_hour in (0.0, 7.25, 23.9, -3.0, 31.0, -1e-18):
        for _ in range(50):
            outcome = model.sample("k80", "europe-west1",
                                   launch_hour_local=launch_hour)
            if not outcome.revoked:
                continue
            assert 0.0 <= outcome.revocation_hour_local < 24.0
            expected = wrap_hour(wrap_hour(launch_hour) + outcome.lifetime_hours)
            assert outcome.revocation_hour_local == pytest.approx(expected)
            assert (hour_bin(outcome.revocation_hour_local)
                    == hour_bin(wrap_hour(launch_hour) + outcome.lifetime_hours))


def test_fig9_hour_histogram_regression():
    """Pin the Fig. 9 histogram behavior on a small deterministic campaign."""
    counts = {("k80", "us-central1"): 40, ("k80", "europe-west1"): 40,
              ("v100", "us-central1"): 40, ("v100", "us-west1"): 40}
    campaign = run_revocation_campaign(launch_counts=counts, seed=4)
    for gpu in ("k80", "v100"):
        histogram = campaign.hour_of_day_histogram(gpu)
        assert histogram.shape == (24,)
        assert histogram.sum() == sum(
            1 for r in campaign.records if r.gpu_name == gpu and r.revoked)
        # Every histogram count comes from the same floor-binned local hour
        # the model's resampling weights used.
        rebinned = np.zeros(24, dtype=int)
        for record in campaign.records:
            if record.gpu_name == gpu and record.revoked:
                rebinned[hour_bin(record.launch_hour_local
                                  + record.lifetime_hours)] += 1
        assert np.array_equal(histogram, rebinned)
    # The paper's sharpest qualitative feature: no V100 revocations between
    # 4 PM and 8 PM local time (the profile's zero-weight window).
    v100 = campaign.hour_of_day_histogram("v100")
    assert v100.sum() > 20
    zero_window = HOURLY_REVOCATION_WEIGHTS["v100"][16:20]
    assert all(weight == 0.0 for weight in zero_window)
    assert v100[16:20].sum() == 0
