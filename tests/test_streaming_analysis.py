"""Bounded-memory streaming accumulators (:mod:`repro.analysis.streaming`).

The two contracts the out-of-core telemetry analysis rides on:

* **chunk invariance** — for a fixed ``block_rows``, feeding the same
  values through any chunking (including one concatenated array) gives
  bit-identical results (canonical re-blocking);
* **exactness** — percentiles equal :func:`numpy.percentile` to the last
  bit, histograms equal :func:`numpy.histogram`, min/max/count are
  exact, and mean/std match the numpy reductions to float precision.
"""

import os

import numpy as np
import pytest

from repro.analysis import (
    ExactPercentiles,
    StreamingDescribe,
    StreamingHistogram,
    StreamingMoments,
    describe,
)
from repro.errors import DataError


def _chunked(values, sizes):
    start = 0
    for size in sizes:
        yield values[start:start + size]
        start += size
    assert start == len(values)


@pytest.fixture(scope="module")
def gamma_values():
    return np.random.default_rng(11).gamma(2.0, 1.5, size=10_007)


# ---------------------------------------------------------------------------
# StreamingMoments.
# ---------------------------------------------------------------------------
def test_moments_chunk_invariant_bit_identical(gamma_values):
    chunkings = [
        [len(gamma_values)],                      # one concatenated array
        [613] * 16 + [199],                       # uneven mid-size chunks
        [1] * 50 + [9957],                        # degenerate single rows
    ]
    results = []
    for sizes in chunkings:
        moments = StreamingMoments(block_rows=256)
        for chunk in _chunked(gamma_values, sizes):
            moments.update(chunk)
        results.append((moments.count, moments.mean, moments.std,
                        moments.minimum, moments.maximum))
    assert results[0] == results[1] == results[2]


def test_moments_match_numpy_reductions(gamma_values):
    moments = StreamingMoments(block_rows=512)
    for chunk in _chunked(gamma_values, [700] * 14 + [207]):
        moments.update(chunk)
    assert moments.count == gamma_values.size
    assert moments.minimum == gamma_values.min()
    assert moments.maximum == gamma_values.max()
    assert moments.mean == pytest.approx(gamma_values.mean(), rel=1e-12)
    assert moments.std == pytest.approx(gamma_values.std(ddof=1), rel=1e-10)


def test_moments_edge_cases():
    moments = StreamingMoments()
    moments.update([])  # empty chunks are fine ...
    assert moments.count == 0
    with pytest.raises(DataError):  # ... but an empty stream has no summary
        moments.mean
    with pytest.raises(DataError):
        moments.minimum
    moments.update([4.5])
    assert moments.std == 0.0  # single value: ddof=1 defined as 0
    assert moments.mean == 4.5
    with pytest.raises(DataError):
        StreamingMoments(block_rows=0)


# ---------------------------------------------------------------------------
# ExactPercentiles.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 3, 5, 64, 1009])
def test_percentiles_bit_identical_to_numpy(n):
    values = np.random.default_rng(n).normal(size=n)
    quantiles = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.9, 100.0]
    with ExactPercentiles(run_rows=16) as accumulator:
        for chunk in _chunked(values, [7] * (n // 7) + [n % 7]):
            accumulator.update(chunk)
        got = accumulator.percentile(quantiles)
    assert got == list(np.percentile(values, quantiles))


def test_percentiles_spill_and_cleanup(gamma_values, tmp_path):
    accumulator = ExactPercentiles(run_rows=128)
    spool_dir = accumulator._dir
    accumulator.update(gamma_values)
    assert len(accumulator._runs) == gamma_values.size // 128
    assert all(os.path.exists(path) for path in accumulator._runs)
    got = accumulator.percentile([50.0, 95.0])
    assert got == list(np.percentile(gamma_values, [50.0, 95.0]))
    accumulator.close()
    assert not os.path.isdir(spool_dir)
    # A caller-owned spool directory is left alone on close.
    shared = ExactPercentiles(run_rows=8, spool_dir=str(tmp_path))
    shared.update(np.arange(32.0))
    shared.close()
    assert os.path.isdir(str(tmp_path))


def test_percentiles_validation():
    with pytest.raises(DataError):
        ExactPercentiles(run_rows=0)
    with ExactPercentiles() as accumulator:
        with pytest.raises(DataError):
            accumulator.percentile([50.0])  # empty stream
        accumulator.update([1.0])
        with pytest.raises(DataError):
            accumulator.percentile([101.0])
        with pytest.raises(DataError):
            accumulator.percentile([-0.5])


# ---------------------------------------------------------------------------
# StreamingHistogram.
# ---------------------------------------------------------------------------
def test_histogram_matches_numpy(gamma_values):
    edges = np.linspace(0.0, 20.0, 41)
    histogram = StreamingHistogram(edges)
    for chunk in _chunked(gamma_values, [999] * 10 + [17]):
        histogram.update(chunk)
    expected = np.histogram(gamma_values, bins=edges)[0]
    assert histogram.counts.tolist() == expected.tolist()
    assert histogram.total == int(expected.sum())


def test_histogram_validation():
    with pytest.raises(DataError):
        StreamingHistogram([1.0])
    with pytest.raises(DataError):
        StreamingHistogram([1.0, 1.0, 2.0])
    with pytest.raises(DataError):
        StreamingHistogram([2.0, 1.0])


# ---------------------------------------------------------------------------
# StreamingDescribe.
# ---------------------------------------------------------------------------
def test_streaming_describe_matches_materialized(gamma_values):
    with StreamingDescribe(block_rows=256) as streaming:
        for chunk in _chunked(gamma_values, [613] * 16 + [199]):
            streaming.update(chunk)
        summary = streaming.result()
    reference = describe(gamma_values)
    assert set(summary) == set(reference)
    assert summary["count"] == reference["count"]
    assert summary["min"] == reference["min"]
    assert summary["max"] == reference["max"]
    # Percentiles are bit-identical; mean/std match to float precision.
    assert summary["p50"] == np.percentile(gamma_values, 50.0)
    assert summary["p95"] == np.percentile(gamma_values, 95.0)
    assert summary["mean"] == pytest.approx(reference["mean"], rel=1e-12)
    assert summary["std"] == pytest.approx(reference["std"], rel=1e-10)


def test_streaming_describe_custom_percentiles_and_empty():
    with StreamingDescribe(percentiles=(25.0, 75.0)) as streaming:
        with pytest.raises(DataError):
            streaming.result()
        streaming.update(np.arange(101.0))
        summary = streaming.result()
    assert summary["p25"] == 25.0
    assert summary["p75"] == 75.0
    assert "p50" not in summary
