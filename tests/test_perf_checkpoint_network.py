"""Tests for the checkpoint-time ground truth and the network model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.calibration import CHECKPOINT_ANCHOR_SECONDS
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.network import NetworkModel


@pytest.fixture()
def model():
    return CheckpointTimeModel(rng=np.random.default_rng(0))


def test_resnet32_checkpoint_matches_anchor(model, catalog):
    files = catalog.profile("resnet_32").checkpoint
    assert model.mean_time(files) == pytest.approx(CHECKPOINT_ANCHOR_SECONDS, rel=1e-6)


def test_checkpoint_time_grows_with_size(model, catalog):
    profiles = sorted(catalog.profiles(), key=lambda p: p.checkpoint.total_bytes)
    times = [model.mean_time(p.checkpoint) for p in profiles]
    assert times == sorted(times)


def test_sampled_times_have_low_cov(model, catalog):
    files = catalog.profile("shake_shake_small").checkpoint
    samples = [model.sample_time(files) for _ in range(200)]
    cov = np.std(samples) / np.mean(samples)
    assert cov < 0.08  # The paper observes CoV between 0.018 and 0.073.


def test_mean_time_for_bytes_linear(model):
    base = model.mean_time_for_bytes(0)
    one = model.mean_time_for_bytes(100 * 1024 * 1024)
    two = model.mean_time_for_bytes(200 * 1024 * 1024)
    assert two - one == pytest.approx(one - base, rel=1e-6)


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        CheckpointTimeModel(base_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        CheckpointTimeModel(seconds_per_mb=-0.1)
    model = CheckpointTimeModel()
    with pytest.raises(ConfigurationError):
        model.mean_time_for_bytes(-1)


def test_network_same_region_is_fastest():
    network = NetworkModel()
    size = 50 * 1024 * 1024
    same = network.transfer_time(size, "us-east1", "us-east1")
    continent = network.transfer_time(size, "us-east1", "us-west1")
    cross = network.transfer_time(size, "us-east1", "asia-east1")
    assert same < continent < cross


def test_network_gradient_push_is_two_transfers():
    network = NetworkModel()
    one_way = network.transfer_time(1024, "us-east1", "us-east1")
    push = network.gradient_push_time(1024, "us-east1", "us-east1")
    assert push == pytest.approx(2 * one_way)


def test_network_rejects_negative_size():
    with pytest.raises(ConfigurationError):
        NetworkModel().transfer_time(-1, "us-east1", "us-east1")
