"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_can_start_elsewhere():
    assert Simulator(start_time=5.0).now == 5.0


def test_negative_start_time_rejected():
    with pytest.raises(SimulationError):
        Simulator(start_time=-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda s: fired.append("late"))
    sim.schedule(1.0, lambda s: fired.append("early"))
    sim.schedule(2.0, lambda s: fired.append("middle"))
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, lambda s, label=label: fired.append(label))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(4.5, lambda s: seen.append(s.now))
    sim.run()
    assert seen == [4.5]
    assert sim.now == 4.5


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda s: None)
    sim.schedule(1.0, lambda s: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda s: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda s: fired.append("cancelled"))
    sim.schedule(2.0, lambda s: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_events_scheduled_from_callbacks_run():
    sim = Simulator()
    fired = []

    def chain(s):
        fired.append(s.now)
        if len(fired) < 3:
            s.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda s: fired.append(1))
    sim.schedule(10.0, lambda s: fired.append(10))
    processed = sim.run(until=5.0)
    assert processed == 1
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_max_events_bounds_processing():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda s: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending_events() == 6


def test_step_returns_none_when_empty():
    assert Simulator().step() is None


def test_advance_to_moves_clock_without_events():
    sim = Simulator()
    sim.advance_to(12.0)
    assert sim.now == 12.0
    with pytest.raises(SimulationError):
        sim.advance_to(5.0)


def test_advance_to_refuses_to_skip_events():
    sim = Simulator()
    sim.schedule(2.0, lambda s: None)
    with pytest.raises(SimulationError):
        sim.advance_to(3.0)


def test_hour_of_day_wraps_around():
    sim = Simulator(epoch_hour_utc=23.0)
    assert sim.hour_of_day_utc() == pytest.approx(23.0)
    assert sim.hour_of_day_utc(at=2 * 3600.0) == pytest.approx(1.0)


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda s: None)
    cancel = sim.schedule(2.0, lambda s: None)
    cancel.cancel()
    assert sim.pending_events() == 1
    assert keep.time == 1.0


# ---------------------------------------------------------------------------
# Lazy-deletion stress: schedule/cancel interleavings.
# ---------------------------------------------------------------------------
def test_heap_schedule_cancel_interleaving_stress():
    """Randomized schedule/cancel interleavings (including cancels and
    re-schedules from inside callbacks) must fire exactly the surviving
    events, in (time, sequence) order, with lazy deletion invisible."""
    import random

    rng = random.Random(0xC0FFEE)
    sim = Simulator()
    fired = []
    expected_alive = {}  # sequence -> fire time
    handles = {}

    def make_callback(seq):
        def callback(s):
            fired.append(seq)
            # Occasionally mutate the future from inside a callback.
            roll = rng.random()
            if roll < 0.2 and expected_alive:
                later = [other for other, t in expected_alive.items()
                         if (t, other) > (s.now, seq)]
                if later:
                    victim = rng.choice(sorted(later))
                    handles[victim].cancel()
                    del expected_alive[victim]
            elif roll < 0.4:
                event = s.schedule(rng.uniform(0.0, 5.0), make_callback(None))
                handles[event.sequence] = event
                expected_alive[event.sequence] = event.time
                event.callback = make_callback(event.sequence)
        return callback

    for _ in range(400):
        event = sim.schedule(rng.uniform(0.0, 100.0), make_callback(None))
        event.callback = make_callback(event.sequence)
        handles[event.sequence] = event
        expected_alive[event.sequence] = event.time
        if rng.random() < 0.5 and expected_alive:
            victim = rng.choice(sorted(expected_alive))
            handles[victim].cancel()
            handles[victim].cancel()  # double-cancel must be harmless
            del expected_alive[victim]

    snapshot = dict(expected_alive)
    assert sim.pending_events() == len(snapshot)
    sim.run()
    # Everything alive at run start fired (callbacks may add/cancel more,
    # which expected_alive tracked as the run went).
    fired_set = set(fired)
    for seq in snapshot:
        assert seq in fired_set or seq not in expected_alive
    # Fired order is the (time, sequence) order of the surviving events.
    fire_keys = [(handles[seq].time, seq) for seq in fired]
    assert fire_keys == sorted(fire_keys)
    assert sim.pending_events() == 0


def test_heavy_cancellation_compacts_heap():
    """Cancelled events must not linger: after mass cancellation the heap
    compacts instead of dragging corpses until they are popped."""
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda s: None) for i in range(1000)]
    for event in events[100:]:
        event.cancel()
    assert sim.pending_events() == 100
    # Lazy deletion with compaction: far fewer than 1000 entries remain.
    assert len(sim._queue) < 300
    fired = sim.run()
    assert fired == 100


def test_cancel_after_fire_keeps_accounting_consistent():
    sim = Simulator()
    first = sim.schedule(1.0, lambda s: None)
    second = sim.schedule(2.0, lambda s: None)
    sim.run()
    first.cancel()   # cancelling an already-fired event is a no-op
    second.cancel()
    assert sim.pending_events() == 0


# ---------------------------------------------------------------------------
# Fleet-scale hooks (PR 4): ownership tags, insertion epochs, pop_next.
# ---------------------------------------------------------------------------
def test_event_ownership_and_insertion_epochs():
    sim = Simulator()
    owner_a, owner_b = object(), object()
    assert sim.owner_insertions(owner_a) == 0
    cell = sim.owner_insertion_cell(owner_a)
    assert cell == [0]
    event = sim.schedule(1.0, lambda s: None, owner=owner_a)
    assert event.owner is owner_a
    sim.schedule(2.0, lambda s: None, owner=owner_a)
    sim.schedule(3.0, lambda s: None, owner=owner_b)
    sim.schedule(4.0, lambda s: None)  # untagged
    assert sim.owner_insertions(owner_a) == 2
    assert cell[0] == 2  # the live cell tracks the same counter
    assert sim.owner_insertions(owner_b) == 1
    assert sim.peek_next().owner is owner_a


def test_pop_next_removes_without_firing():
    sim = Simulator()
    fired = []
    first = sim.schedule(1.0, lambda s: fired.append("first"))
    sim.schedule(2.0, lambda s: fired.append("second"))
    popped = sim.pop_next()
    assert popped is first and fired == []
    assert sim.pending_events() == 1
    # The popped event can be re-inserted with its original sequence and
    # fires in its original position.
    sim.schedule_at(first.time, first.callback, sequence=first.sequence)
    sim.run()
    assert fired == ["first", "second"]


def test_pop_next_skips_cancelled_corpses():
    sim = Simulator()
    doomed = sim.schedule(0.5, lambda s: None)
    survivor = sim.schedule(1.0, lambda s: None)
    doomed.cancel()
    assert sim.pop_next() is survivor
    assert sim.pop_next() is None
