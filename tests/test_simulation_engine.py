"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_can_start_elsewhere():
    assert Simulator(start_time=5.0).now == 5.0


def test_negative_start_time_rejected():
    with pytest.raises(SimulationError):
        Simulator(start_time=-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda s: fired.append("late"))
    sim.schedule(1.0, lambda s: fired.append("early"))
    sim.schedule(2.0, lambda s: fired.append("middle"))
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, lambda s, label=label: fired.append(label))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(4.5, lambda s: seen.append(s.now))
    sim.run()
    assert seen == [4.5]
    assert sim.now == 4.5


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda s: None)
    sim.schedule(1.0, lambda s: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda s: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda s: fired.append("cancelled"))
    sim.schedule(2.0, lambda s: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_events_scheduled_from_callbacks_run():
    sim = Simulator()
    fired = []

    def chain(s):
        fired.append(s.now)
        if len(fired) < 3:
            s.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda s: fired.append(1))
    sim.schedule(10.0, lambda s: fired.append(10))
    processed = sim.run(until=5.0)
    assert processed == 1
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_max_events_bounds_processing():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda s: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending_events() == 6


def test_step_returns_none_when_empty():
    assert Simulator().step() is None


def test_advance_to_moves_clock_without_events():
    sim = Simulator()
    sim.advance_to(12.0)
    assert sim.now == 12.0
    with pytest.raises(SimulationError):
        sim.advance_to(5.0)


def test_advance_to_refuses_to_skip_events():
    sim = Simulator()
    sim.schedule(2.0, lambda s: None)
    with pytest.raises(SimulationError):
        sim.advance_to(3.0)


def test_hour_of_day_wraps_around():
    sim = Simulator(epoch_hour_utc=23.0)
    assert sim.hour_of_day_utc() == pytest.approx(23.0)
    assert sim.hour_of_day_utc(at=2 * 3600.0) == pytest.approx(1.0)


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda s: None)
    cancel = sim.schedule(2.0, lambda s: None)
    cancel.cancel()
    assert sim.pending_events() == 1
    assert keep.time == 1.0
