"""Out-of-core fleet report + artifact diff (:mod:`repro.telemetry`).

Covers the PR's two analysis surfaces from the artifact side:

* ``fleet_report`` — the streaming (chunk-fed) report is value-identical
  to the materialized one across trace levels, shard counts, partial
  final chunks, zero-draw/zero-step jobs, and empty artifacts;
* ``diff_artifacts`` — self-diff is identical (and byte-identical under
  ``--exact``), while value drift, NaN mismatches, row-count drift, and
  added/removed jobs are all localized and fail the CLI exit code.
"""

import json
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.scenarios.catalog import get_scenario
from repro.telemetry import (
    TelemetryConfig,
    TelemetrySpool,
    diff_artifacts,
    export_fleet_telemetry,
    fleet_report,
    render_report,
    write_npz,
    TelemetryReader,
)
from repro.telemetry.cli import main as telemetry_cli
from repro.telemetry.report import render_hour_histogram


def _outcome(revoked, lifetime=None, hour=None):
    return SimpleNamespace(revoked=revoked, lifetime_hours=lifetime,
                           revocation_hour_local=hour)


def _build_artifact(tmp_path, name, jobs, chunk_rows=4, scenario="unit"):
    """Forge an artifact from ``{rank: {"steps": [...], "draws": [...]}}``."""
    spool_dir = str(tmp_path / f"{name}.spool")
    out_path = str(tmp_path / f"{name}.npz")
    os.makedirs(spool_dir)
    meta_jobs = []
    with TelemetrySpool(TelemetryConfig(spool_dir=spool_dir,
                                        chunk_rows=chunk_rows)) as spool:
        for rank, spec in sorted(jobs.items()):
            job = spool.job(rank, f"job-{rank}", "resnet_15", 0.589)
            job.register_worker(f"worker-{rank}", "k80", "us-east1")
            sink = job.step_sink()
            for row in spec.get("steps", []):
                sink.append_row(f"worker-{rank}", *row)
            for launch_hour, outcome in spec.get("draws", []):
                job.record_draw(f"worker-{rank}", launch_hour, outcome)
            meta_jobs.append({"rank": rank, "name": f"job-{rank}",
                              "model": "resnet_15", "gflops": 0.589})
    write_npz(spool_dir, out_path,
              {"scenario": scenario, "seed": 0, "chunk_rows": chunk_rows,
               "jobs": meta_jobs})
    return out_path


def _step_row(index, steps=10):
    start = float(index)
    return (start, start + 0.5, steps, steps * (index + 1), steps * (index + 1))


@pytest.fixture(scope="module")
def hetero_artifact(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("report") / "hetero.npz")
    export_fleet_telemetry(get_scenario("multi_region_hetero"), path, seed=1)
    return path


# ---------------------------------------------------------------------------
# fleet_report: streaming == materialized.
# ---------------------------------------------------------------------------
def test_report_streaming_equals_materialized_across_variants(tmp_path):
    scenario = get_scenario("multi_region_hetero")
    documents = []
    for label, kwargs in (
            ("single", {"shards": 1}),
            ("sharded", {"shards": 2}),
            ("summary", {"shards": 2, "trace_level": "summary"})):
        path = str(tmp_path / f"{label}.npz")
        export_fleet_telemetry(scenario, path, seed=1, **kwargs)
        with TelemetryReader(path) as reader:
            streamed = fleet_report(reader)
            materialized = fleet_report(reader, materialized=True)
        assert streamed == materialized, label
        streamed.pop("artifact")
        documents.append(streamed)
    # Shard count and trace level change nothing about the analysis.
    assert documents[0] == documents[1] == documents[2]


def test_report_partial_final_chunks(tmp_path):
    # chunk_rows=4 over 10 rows: two full chunks + one partial chunk.
    path = _build_artifact(tmp_path, "partial", {
        0: {"steps": [_step_row(i) for i in range(10)],
            "draws": [(7.0, _outcome(True, 3.25, 10.25))]},
    })
    with TelemetryReader(path) as reader:
        chunk_sizes = [len(c) for c in reader.step_chunks(0)]
        assert chunk_sizes == [4, 4, 2]
        streamed = fleet_report(reader)
        assert streamed == fleet_report(reader, materialized=True)
    job = streamed["jobs"][0]
    assert job["step_rows"] == 10
    assert job["steps_total"] == 100.0
    assert job["mean_step_seconds"] == pytest.approx(0.05)
    assert streamed["fleet"]["revocation_hour_histogram"][10] == 1


def test_report_zero_draw_and_zero_step_jobs(tmp_path):
    path = _build_artifact(tmp_path, "sparse", {
        0: {"steps": [_step_row(i) for i in range(3)]},   # no draws at all
        1: {"draws": [(0.0, _outcome(False))]},           # no step rows
    })
    with TelemetryReader(path) as reader:
        streamed = fleet_report(reader)
        assert streamed == fleet_report(reader, materialized=True)
        rendered = render_report(streamed)
    by_rank = {job["rank"]: job for job in streamed["jobs"]}
    assert by_rank[0]["draws"] == 0 and by_rank[0]["step_rows"] == 3
    assert by_rank[1]["step_rows"] == 0
    assert by_rank[1]["mean_step_seconds"] is None
    assert by_rank[1]["draws"] == 1 and by_rank[1]["revocations"] == 0
    assert " - " in rendered  # the no-steps job renders placeholder cells
    # The fleet summary only aggregates what exists.
    assert streamed["fleet"]["step_rows"] == 3
    assert sum(streamed["fleet"]["revocation_hour_histogram"]) == 0


def test_report_empty_artifact(tmp_path):
    spool_dir = str(tmp_path / "empty.spool")
    path = str(tmp_path / "empty.npz")
    os.makedirs(spool_dir)
    with TelemetrySpool(TelemetryConfig(spool_dir=spool_dir)):
        pass
    write_npz(spool_dir, path, {"scenario": "empty", "seed": 0, "jobs": []})
    with TelemetryReader(path) as reader:
        streamed = fleet_report(reader)
        assert streamed == fleet_report(reader, materialized=True)
    assert streamed["jobs"] == []
    assert streamed["fleet"]["step_time_seconds"] is None
    assert "0 jobs" in render_report(streamed)


def test_render_hour_histogram_shapes():
    counts = [0] * 24
    counts[13] = 4
    text = render_hour_histogram(counts, width=8)
    lines = text.splitlines()
    assert len(lines) == 25
    assert lines[14].endswith("#" * 8)
    assert render_hour_histogram([0] * 24).count("#") == 0


# ---------------------------------------------------------------------------
# diff_artifacts.
# ---------------------------------------------------------------------------
def test_diff_self_is_identical(tmp_path, hetero_artifact):
    copy = str(tmp_path / "copy.npz")
    export_fleet_telemetry(get_scenario("multi_region_hetero"), copy, seed=1)
    result = diff_artifacts(hetero_artifact, copy, exact=True)
    assert result.identical
    assert result.byte_identical is True
    assert result.meta_equal
    document = result.to_document()
    assert document["identical"] and document["jobs"] == []
    assert document["jobs_compared"] == 4
    assert "identical" in result.summary()


def test_diff_localizes_value_and_nan_differences(tmp_path):
    base = {
        0: {"steps": [_step_row(i) for i in range(6)],
            "draws": [(7.0, _outcome(True, 3.25, 10.25)),
                      (8.0, _outcome(False))]},
    }
    drifted = {
        0: {"steps": [_step_row(i) for i in range(5)] + [(5.0, 6.5, 10, 60, 60)],
            "draws": [(7.0, _outcome(True, 3.25, 10.25)),
                      (8.0, _outcome(True, 2.0, 9.0))]},
    }
    path_a = _build_artifact(tmp_path, "base", base)
    path_b = _build_artifact(tmp_path, "drifted", drifted)
    result = diff_artifacts(path_a, path_b)
    assert not result.identical
    job = result.jobs[0]
    # Row 5's end_time drifted by 1.0 second.
    assert job.steps.max_abs_delta["end_time"] == 1.0
    assert job.steps.max_abs_delta["start_time"] == 0.0
    # Draw 1 flipped revoked 0 -> 1, NaN lifetime vs a real value: inf.
    assert job.draws.max_abs_delta["revoked"] == 1.0
    assert job.draws.max_abs_delta["lifetime_hours"] == np.inf
    assert "max|delta|" in result.summary()
    # Both-NaN cells compare equal: self-diff of the NaN-bearing artifact.
    assert diff_artifacts(path_a, path_a, exact=True).identical


def test_diff_added_removed_jobs_and_row_counts(tmp_path):
    steps = [_step_row(i) for i in range(4)]
    path_a = _build_artifact(tmp_path, "jobs_a",
                             {0: {"steps": steps},
                              1: {"steps": steps}})
    path_b = _build_artifact(tmp_path, "jobs_b",
                             {1: {"steps": steps + [_step_row(4)]},
                              2: {"steps": steps}})
    result = diff_artifacts(path_a, path_b)
    assert result.removed_jobs == [0]
    assert result.added_jobs == [2]
    assert not result.meta_equal
    job = result.jobs[0]
    assert job.rank == 1
    assert (job.steps.rows_a, job.steps.rows_b) == (4, 5)
    assert not job.identical
    summary = result.summary()
    assert "jobs only in A: [0]" in summary
    assert "jobs only in B: [2]" in summary
    assert "steps rows 4 vs 5" in summary


# ---------------------------------------------------------------------------
# CLI: report + diff subcommands.
# ---------------------------------------------------------------------------
def test_cli_report(tmp_path, capsys, hetero_artifact):
    report_json = str(tmp_path / "report.json")
    assert telemetry_cli(["report", hetero_artifact,
                          "--json", report_json]) == 0
    out = capsys.readouterr().out
    assert "fleet telemetry report" in out
    assert "local hour | revocations" in out
    with open(report_json, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert len(document["jobs"]) == 4
    assert document["fleet"]["step_rows"] > 0


def test_cli_diff_exit_codes(tmp_path, capsys, hetero_artifact):
    reseeded = str(tmp_path / "reseeded.npz")
    export_fleet_telemetry(get_scenario("multi_region_hetero"), reseeded,
                           seed=2)
    diff_json = str(tmp_path / "diff.json")
    assert telemetry_cli(["diff", hetero_artifact, hetero_artifact,
                          "--exact"]) == 0
    assert "byte identical: True" in capsys.readouterr().out
    assert telemetry_cli(["diff", hetero_artifact, reseeded,
                          "--json", diff_json]) == 1
    assert "compared jobs differ" in capsys.readouterr().out
    with open(diff_json, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["identical"] is False
    assert document["jobs_compared"] == 4
