"""Tests for the calibrated revocation model (Table V / Fig. 8 / Fig. 9)."""

import numpy as np
import pytest

from repro.cloud.revocation import (
    MAX_TRANSIENT_LIFETIME_HOURS,
    REVOCATION_CALIBRATION,
    RevocationModel,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def model():
    return RevocationModel(rng=np.random.default_rng(0))


def test_calibration_covers_every_table5_cell():
    expected = {
        ("k80", "us-east1"), ("k80", "us-central1"), ("k80", "us-west1"),
        ("k80", "europe-west1"),
        ("p100", "us-east1"), ("p100", "us-central1"), ("p100", "us-west1"),
        ("p100", "europe-west1"),
        ("v100", "us-central1"), ("v100", "us-west1"), ("v100", "europe-west4"),
        ("v100", "asia-east1"),
    }
    assert set(REVOCATION_CALIBRATION) == expected


def test_table5_revocation_fractions_are_calibrated():
    assert REVOCATION_CALIBRATION[("k80", "us-west1")].p_revoke_24h == pytest.approx(0.2292)
    assert REVOCATION_CALIBRATION[("p100", "us-east1")].p_revoke_24h == pytest.approx(0.70)
    assert REVOCATION_CALIBRATION[("v100", "us-west1")].p_revoke_24h == pytest.approx(0.7333)


def test_unavailable_combination_raises(model):
    with pytest.raises(ConfigurationError):
        model.params_for("v100", "us-east1")


def test_revocation_probability_monotone_in_duration(model):
    previous = 0.0
    for hours in (0.5, 1, 2, 4, 8, 16, 24):
        probability = model.revocation_probability("k80", "us-central1", hours)
        assert probability >= previous
        previous = probability


def test_revocation_probability_caps_at_table5_fraction(model):
    for (gpu, region), params in REVOCATION_CALIBRATION.items():
        at_24 = model.revocation_probability(gpu, region, 24.0)
        assert at_24 == pytest.approx(params.p_revoke_24h, abs=1e-9)
        beyond = model.revocation_probability(gpu, region, 48.0)
        assert beyond == pytest.approx(params.p_revoke_24h, abs=1e-9)


def test_zero_duration_has_zero_probability(model):
    assert model.revocation_probability("k80", "us-east1", 0.0) == 0.0


def test_europe_west1_k80_dies_fast_us_west1_does_not(model):
    # Fig. 8 narrative: >50% of europe-west1 K80s revoked within two hours,
    # <5% of us-west1 K80s.
    assert model.revocation_probability("k80", "europe-west1", 2.0) > 0.4
    assert model.revocation_probability("k80", "us-west1", 2.0) < 0.05


def test_sample_lifetimes_bounded_by_max(model):
    for _ in range(100):
        outcome = model.sample("p100", "us-west1")
        assert 0.0 < outcome.lifetime_hours <= MAX_TRANSIENT_LIFETIME_HOURS
        if not outcome.revoked:
            assert outcome.lifetime_hours == MAX_TRANSIENT_LIFETIME_HOURS
            assert outcome.revocation_hour_local is None
        else:
            assert 0.0 <= outcome.revocation_hour_local < 24.0


def test_sampled_revocation_fraction_matches_calibration(model):
    outcomes = model.sample_batch("p100", "us-east1", count=800)
    fraction = sum(o.revoked for o in outcomes) / len(outcomes)
    assert fraction == pytest.approx(0.70, abs=0.06)


def test_workload_does_not_change_revocations():
    seed_idle = RevocationModel(rng=np.random.default_rng(5))
    seed_stressed = RevocationModel(rng=np.random.default_rng(5))
    idle = seed_idle.sample_batch("k80", "us-central1", 200, stressed=False)
    stressed = seed_stressed.sample_batch("k80", "us-central1", 200, stressed=True)
    assert [o.lifetime_hours for o in idle] == [o.lifetime_hours for o in stressed]


def test_v100_quiet_hours_have_no_revocations(model):
    # Fig. 9: no V100 revocations between 4 PM and 8 PM local time.
    hours = [o.revocation_hour_local for o in model.sample_batch("v100", "us-central1", 600)
             if o.revoked]
    assert hours, "expected at least some revocations"
    assert not any(16.0 <= h < 20.0 for h in hours)


def test_k80_revocations_concentrate_in_the_morning(model):
    hours = [o.revocation_hour_local
             for o in model.sample_batch("k80", "us-central1", 800, launch_hour_local=8.0)
             if o.revoked]
    histogram = np.histogram(hours, bins=24, range=(0, 24))[0]
    assert histogram[9:12].sum() > histogram[0:3].sum()


def test_lifetime_cdf_matches_probability_queries(model):
    grid = [1, 5, 9, 13, 17, 21, 24]
    cdf = model.lifetime_cdf("v100", "asia-east1", grid)
    assert list(cdf) == [model.revocation_probability("v100", "asia-east1", h) for h in grid]
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))


def test_mean_time_to_revocation_in_paper_band():
    model = RevocationModel(rng=np.random.default_rng(11))
    # The paper reports K80 mean time to revocation between ~10.6 and ~19.8 h
    # (survivors counted at the 24-hour maximum).
    for region in ("us-east1", "us-central1", "us-west1", "europe-west1"):
        mttr = model.mean_time_to_revocation("k80", region, samples=1500)
        assert 8.0 < mttr < 22.5


def test_invalid_candidates_rejected():
    with pytest.raises(ConfigurationError):
        RevocationModel(candidates=0)


# ---------------------------------------------------------------------------
# Draw-order contract of the batched sampler (PR 4).
# ---------------------------------------------------------------------------
def _scalar_reference_sample(model, gpu_name, region_name, launch_hour_local):
    """The pre-vectorization scalar candidate loop, kept as the golden
    reference: the batched sampler must consume the RNG stream at exactly
    these points and produce exactly these outcomes."""
    from repro.cloud.gpus import get_gpu
    from repro.cloud.revocation import RevocationOutcome
    from repro.units import hour_bin, wrap_hour

    gpu = get_gpu(gpu_name)
    params = model.params_for(gpu_name, region_name)
    launch_hour_local = wrap_hour(launch_hour_local)
    if model._rng.uniform() >= params.p_revoke_24h:
        return RevocationOutcome(revoked=False,
                                 lifetime_hours=MAX_TRANSIENT_LIFETIME_HOURS,
                                 revocation_hour_local=None)
    weights = model._hourly_weights[gpu.name]
    candidates = [model._sample_conditional_lifetime(params)
                  for _ in range(model._candidates)]
    candidate_weights = np.array([
        weights[hour_bin(launch_hour_local + lifetime)] + 1e-9
        for lifetime in candidates])
    probabilities = candidate_weights / candidate_weights.sum()
    chosen = candidates[int(model._rng.choice(len(candidates), p=probabilities))]
    return RevocationOutcome(revoked=True, lifetime_hours=float(chosen),
                             revocation_hour_local=float(
                                 wrap_hour(launch_hour_local + chosen)))


@pytest.mark.parametrize("cell", sorted(REVOCATION_CALIBRATION))
def test_vectorized_sampler_matches_scalar_golden(cell):
    gpu, region = cell
    for hour in (0.0, 8.5, 23.999999):
        vectorized = RevocationModel(rng=np.random.default_rng(99))
        scalar = RevocationModel(rng=np.random.default_rng(99))
        for _ in range(150):
            assert (vectorized.sample(gpu, region, launch_hour_local=hour)
                    == _scalar_reference_sample(scalar, gpu, region, hour))
        # Both consumed the stream identically: states are equal.
        assert (vectorized._rng.bit_generator.state
                == scalar._rng.bit_generator.state)


def test_sample_batch_equals_sequential_samples():
    batched = RevocationModel(rng=np.random.default_rng(3))
    sequential = RevocationModel(rng=np.random.default_rng(3))
    batch = batched.sample_batch("k80", "europe-west1", 300,
                                 launch_hour_local=9.0)
    singles = tuple(sequential.sample("k80", "europe-west1",
                                      launch_hour_local=9.0)
                    for _ in range(300))
    assert batch == singles
    assert (batched._rng.bit_generator.state
            == sequential._rng.bit_generator.state)


def test_mean_time_to_revocation_routes_through_batched_sampler(model):
    # Deterministic: the internal generator is re-seeded, and batching is
    # draw-for-draw identical to the scalar loop it replaced.
    a = model.mean_time_to_revocation("k80", "us-west1", samples=500)
    b = model.mean_time_to_revocation("k80", "us-west1", samples=500)
    assert a == b
    rng = np.random.default_rng(7)
    reference = RevocationModel(rng=np.random.default_rng(7))
    outcomes = reference.sample_batch("k80", "us-west1", 500)
    expected = float(np.mean([o.lifetime_hours for o in outcomes]))
    assert model.mean_time_to_revocation(
        "k80", "us-west1", samples=500, rng=rng) == expected
