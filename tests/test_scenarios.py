"""Tests for the fleet-scale scenario subsystem (repro.scenarios)."""

import json

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.scenarios import (
    JobSpec,
    ScenarioSpec,
    TransientPool,
    build_fleet_spec,
    fleet_hour_histogram,
    fleet_summary_table,
    get_scenario,
    list_scenarios,
    run_fleet,
    run_scenario,
)
from repro.scenarios.cli import main
from repro.scenarios.fleet import FleetRun
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import get_sweep
from repro.sweeps.result import CellResult, SweepResult


def tiny_scenario(**overrides):
    """A two-job fleet small enough for unit tests."""
    defaults = dict(
        name="tiny",
        description="two tiny jobs",
        jobs=(
            JobSpec(name="a", model_name="resnet_15", total_steps=600,
                    workers=(("k80", "us-west1"),) * 2,
                    checkpoint_interval_steps=500),
            JobSpec(name="b", model_name="resnet_15", total_steps=600,
                    workers=(("k80", "us-west1"),) * 2,
                    checkpoint_interval_steps=500),
        ),
        pool_capacity={("k80", "us-west1"): 5},
        reclaim_seconds=600.0,
        epoch_hour_utc=9.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ---------------------------------------------------------------------------
# Specs.
# ---------------------------------------------------------------------------
def test_scenario_spec_round_trips_through_json():
    scenario = get_scenario("multi_region_hetero")
    params = scenario.to_params()
    encoded = json.dumps(params, sort_keys=True)
    rebuilt = ScenarioSpec.from_params(json.loads(encoded))
    assert rebuilt == scenario
    assert rebuilt.to_params() == params


def test_scenario_spec_validation():
    job = JobSpec(name="a", model_name="resnet_15", total_steps=100,
                  workers=(("k80", "us-west1"),))
    with pytest.raises(ConfigurationError):  # pool smaller than the fleet
        ScenarioSpec(name="bad", description="", jobs=(job,),
                     pool_capacity={("k80", "us-west1"): 0})
    with pytest.raises(ConfigurationError):  # missing pool cell
        ScenarioSpec(name="bad", description="", jobs=(job,), pool_capacity={})
    with pytest.raises(ConfigurationError):  # duplicate job names
        ScenarioSpec(name="bad", description="", jobs=(job, job),
                     pool_capacity={("k80", "us-west1"): 4})
    with pytest.raises(ConfigurationError):  # region does not offer the GPU
        JobSpec(name="x", model_name="resnet_15", total_steps=100,
                workers=(("v100", "europe-west1"),))
    # Epoch hours normalize into [0, 24).
    spec = tiny_scenario(epoch_hour_utc=-5.0)
    assert spec.epoch_hour_utc == pytest.approx(19.0)


def test_named_scenarios_build_and_register():
    scenarios = list_scenarios()
    assert [s.name for s in scenarios] == [
        "single_region_k80", "multi_region_hetero", "revocation_storm",
        "capacity_crunch"]
    with pytest.raises(ConfigurationError):
        get_scenario("no-such-scenario")
    # Every named scenario is also a registered fleet_<name> sweep.
    for scenario in scenarios:
        definition = get_sweep(f"fleet_{scenario.name}")
        assert len(definition.build_spec()) >= 2


# ---------------------------------------------------------------------------
# The shared pool.
# ---------------------------------------------------------------------------
def test_pool_denies_when_exhausted_and_reclaims_capacity():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 2}, reclaim_seconds=100.0)
    pool.acquire("k80", "us-west1")
    pool.acquire("k80", "us-west1")
    with pytest.raises(CapacityError):
        pool.acquire("k80", "us-west1")

    granted = []
    pool.revoke("k80", "us-west1")  # slot reclaimed for 100 s
    outcome = pool.request_replacement("k80", "us-west1",
                                       lambda: granted.append("now"))
    assert outcome == "denied" and granted == []
    assert pool.replacement_denial_rate == 1.0

    # A queued request is served FIFO when the reclaimed capacity returns.
    outcome = pool.request_replacement("k80", "us-west1",
                                       lambda: granted.append("first"),
                                       queue=True)
    assert outcome == "queued"
    outcome = pool.request_replacement("k80", "us-west1",
                                       lambda: granted.append("second"),
                                       queue=True)
    assert outcome == "queued"
    sim.run(until=99.0)
    assert granted == []
    sim.run(until=101.0)
    assert granted == ["first"]  # one slot back, one waiter served
    assert pool.pending_waiters("k80", "us-west1") == 1
    # A normal release (job completed) serves the remaining waiter.
    pool.release("k80", "us-west1")
    assert granted == ["first", "second"]
    stats = pool.stats()
    assert stats["replacements_denied"] == 1
    assert stats["replacements_granted"] == 2
    assert stats["cells"]["k80/us-west1"]["peak_in_use"] == 2


def test_pool_rejects_unknown_cells_and_misuse():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 1})
    with pytest.raises(CapacityError):
        pool.acquire("v100", "us-west1")
    with pytest.raises(CapacityError):
        pool.release("k80", "us-west1")
    with pytest.raises(ConfigurationError):
        TransientPool(sim, {})
    with pytest.raises(ConfigurationError):
        TransientPool(sim, {("k80", "us-west1"): 0})


# ---------------------------------------------------------------------------
# Fleet runs.
# ---------------------------------------------------------------------------
def test_run_fleet_completes_all_jobs(catalog):
    payload = run_fleet(tiny_scenario(), RandomStreams(seed=3), catalog=catalog)
    assert payload["jobs_total"] == 2
    assert payload["jobs_completed"] == 2
    assert payload["jobs_stalled"] == 0
    assert payload["makespan_seconds"] > 0
    assert payload["total_cost_usd"] > 0
    assert payload["epoch_hour_utc"] == pytest.approx(9.0)
    for job in payload["jobs"]:
        assert job["completed"] and job["steps_done"] >= 600
    # Pool bookkeeping balances: everything acquired was returned.
    cell = payload["pool"]["cells"]["k80/us-west1"]
    assert cell["in_use"] == 0 and cell["peak_in_use"] == 4


def test_fleet_scenario_serial_vs_parallel_bit_identity(catalog):
    """The sweeps contract extends to whole fleets: workers=2 == serial."""
    scenario = get_scenario("single_region_k80")
    serial = run_scenario(scenario, replicates=3, seed=11, workers=1,
                          catalog=catalog)
    parallel = run_scenario(scenario, replicates=3, seed=11, workers=2,
                            catalog=catalog)
    assert serial.payloads() == parallel.payloads()
    assert [r.seed for r in serial] == [r.seed for r in parallel]


def test_fleet_fast_forward_matches_chunked_path(catalog, monkeypatch):
    """The PR 2 core contract extends to fleets: both paths, same floats."""
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "1")
    fast = run_fleet(tiny_scenario(), RandomStreams(seed=7), catalog=catalog)
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "0")
    chunked = run_fleet(tiny_scenario(), RandomStreams(seed=7), catalog=catalog)
    assert fast == chunked


def test_fleet_run_forwards_core_path_override(catalog):
    """The fast_forward argument must reach every session, not just the env."""
    chunked_run = FleetRun(tiny_scenario(), RandomStreams(seed=2),
                           catalog=catalog, fast_forward=False)
    assert all(not job.session.fast_forward_enabled for job in chunked_run.jobs)
    chunked = chunked_run.run()
    assert all(job.session.fast_forward_chunks == 0 for job in chunked_run.jobs)
    fast_run = FleetRun(tiny_scenario(), RandomStreams(seed=2),
                        catalog=catalog, fast_forward=True)
    assert all(job.session.fast_forward_enabled for job in fast_run.jobs)
    assert fast_run.run() == chunked


def test_mitigation_parameter_servers_are_billed(catalog):
    """A PS added by bottleneck mitigation accrues cost from its add time."""
    run = FleetRun(get_scenario("multi_region_hetero"), RandomStreams(seed=0),
                   catalog=catalog)
    run.run()
    job = next(fj for fj in run.jobs
               if any(a.kind == "mitigation" for a in fj.controller.actions))
    end = job.end_time(run.simulator.now)
    with_mitigation = run._job_cost(job, end)
    job.controller.actions = [a for a in job.controller.actions
                              if a.kind != "mitigation"]
    assert run._job_cost(job, end) < with_mitigation


def test_fleet_cache_resume(tmp_path, catalog):
    scenario = tiny_scenario()
    cold = run_scenario(scenario, replicates=2, seed=5, cache_dir=tmp_path,
                        catalog=catalog)
    assert cold.cache_misses == 2
    warm = run_scenario(scenario, replicates=2, seed=5, cache_dir=tmp_path,
                        catalog=catalog)
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert warm.payloads() == cold.payloads()


def test_capacity_crunch_reports_replacement_denials(catalog):
    """The acceptance scenario: a crunched pool denies replacements."""
    result = run_scenario(get_scenario("capacity_crunch"), replicates=2,
                          seed=0, catalog=catalog)
    payloads = result.payloads()
    assert sum(p["replacements_denied"] for p in payloads) > 0
    assert max(p["replacement_denial_rate"] for p in payloads) > 0.0
    # Denied replacements are never admitted: the pool never grows back.
    for payload in payloads:
        assert payload["replacements_admitted"] == 0
        assert payload["revocations"] == payload["replacements_denied"]
        assert payload["jobs_completed"] + payload["jobs_stalled"] \
            == payload["jobs_total"]


def test_stalled_fleet_stops_at_the_stall_not_the_reclaim_horizon(catalog):
    """A stalled job must not drag makespan/cost to the 24h reclaim events.

    capacity_crunch at seed 1 stalls one job; the fleet clock has to stop
    at the last meaningful moment (~1.4h), not drain pool-reclaim events
    scheduled a day out and bill idle parameter servers the whole time.
    """
    payload = run_fleet(get_scenario("capacity_crunch"),
                        RandomStreams(seed=1), catalog=catalog)
    assert payload["jobs_stalled"] >= 1
    assert payload["makespan_seconds"] < 6 * 3600.0
    ends = [job["end_time_seconds"] for job in payload["jobs"]]
    assert payload["makespan_seconds"] == pytest.approx(max(ends))
    completed_costs = [j["cost_usd"] for j in payload["jobs"] if j["completed"]]
    stalled_costs = [j["cost_usd"] for j in payload["jobs"] if j["stalled"]]
    # A stalled job stops billing at its stall: same order of magnitude as
    # the jobs that ran to completion, not a day of idle parameter servers.
    assert max(stalled_costs) < 2 * max(completed_costs)


def test_pending_count_survives_cross_cell_synchronous_grant(catalog):
    """A grant in one (gpu, region) cell must not eat another cell's
    queued-request count, or the job would be falsely marked stalled."""
    scenario = ScenarioSpec(
        name="mixed", description="two cells, one queued waiter",
        jobs=(JobSpec(name="m", model_name="resnet_15", total_steps=50_000,
                      workers=(("k80", "europe-west1"),
                               ("p100", "europe-west1")),
                      queue_replacements=True),),
        pool_capacity={("k80", "europe-west1"): 1,
                       ("p100", "europe-west1"): 2},
        reclaim_seconds=86_400.0, epoch_hour_utc=9.0)
    run = FleetRun(scenario, RandomStreams(seed=0), catalog=catalog)
    fleet_job = run.jobs[0]
    run.simulator.run(until=100.0)  # fire the job-start event
    session, controller = fleet_job.session, fleet_job.controller
    k80, p100 = list(session.workers.values())[:2]
    # Exhausted k80 cell: the replacement request queues.
    run.pool.revoke("k80", "europe-west1")
    session.handle_revocation(k80.worker_id)
    assert controller.replacements_pending == 1
    # The p100 cell still has a free slot: synchronous grant — which must
    # leave the k80 cell's queued request pending.
    run.pool.revoke("p100", "europe-west1")
    session.handle_revocation(p100.worker_id)
    assert controller.replacements_pending == 1
    assert run.pool.pending_waiters("k80", "europe-west1") == 1
    assert not fleet_job.stalled  # the queued waiter can still revive it


def test_exhausted_pool_queues_and_revives_jobs(catalog):
    """A queued replacement is granted once another job releases capacity."""
    scenario = tiny_scenario(
        name="tight",
        jobs=(
            JobSpec(name="a", model_name="resnet_15", total_steps=400,
                    workers=(("k80", "europe-west1"),) * 2,
                    checkpoint_interval_steps=500),
            JobSpec(name="b", model_name="resnet_15", total_steps=30_000,
                    workers=(("k80", "europe-west1"),) * 2,
                    checkpoint_interval_steps=4000,
                    queue_replacements=True),
        ),
        pool_capacity={("k80", "europe-west1"): 4},
        reclaim_seconds=86_400.0,  # reclaimed capacity never returns
        epoch_hour_utc=8.5,
    )
    # Find a seed where the long job is revoked while the pool is full and
    # later revived by the short job's released slots.
    for seed in range(30):
        payload = run_fleet(scenario, RandomStreams(seed=seed),
                            catalog=catalog)
        pool = payload["pool"]
        if pool["replacements_queued"] > 0 and pool["replacements_granted"] > 0:
            assert payload["jobs"][1]["replacements_admitted"] > 0
            break
    else:
        pytest.fail("no seed exercised the queued-replacement revival path")


# ---------------------------------------------------------------------------
# Reporting.
# ---------------------------------------------------------------------------
def test_fleet_summary_table_golden():
    """Golden rendering of the fleet table from synthetic payloads."""
    spec = build_fleet_spec(tiny_scenario(), replicates=2)
    payloads = [
        {"jobs_completed": 2, "jobs_total": 2, "jobs_stalled": 0,
         "makespan_seconds": 7200.0, "total_cost_usd": 1.25, "revocations": 3,
         "replacements_admitted": 2, "replacements_denied": 1,
         "replacement_denial_rate": 1 / 3, "ps_mitigations": 1},
        {"jobs_completed": 1, "jobs_total": 2, "jobs_stalled": 1,
         "makespan_seconds": 3600.0, "total_cost_usd": 0.5, "revocations": 4,
         "replacements_admitted": 0, "replacements_denied": 4,
         "replacement_denial_rate": 1.0, "ps_mitigations": 0},
    ]
    result = SweepResult(spec=spec, results=[
        CellResult(cell=cell, payload=payload, seed=0, cached=False,
                   duration_seconds=0.0)
        for cell, payload in zip(spec.cells(), payloads)])
    golden = "\n".join([
        "fleet scenario 'tiny'",
        "replicate | jobs done | stalled | makespan (h) | cost (USD) | "
        "revocations | absorbed | denied | denial rate | PS mitigations",
        "----------+-----------+---------+--------------+------------+-"
        "------------+----------+--------+-------------+---------------",
        "0         | 2/2       | 0       | 2.000        | 1.250      | "
        "3           | 2        | 1      | 0.333       | 1             ",
        "1         | 1/2       | 1       | 1.000        | 0.500      | "
        "4           | 0        | 4      | 1.000       | 0             ",
    ])
    assert fleet_summary_table(result) == golden


def test_fleet_hour_histogram_bins_revocation_hours():
    payloads = [{"revocation_hours_local": [0.5, 9.9, 23.99]},
                {"revocation_hours_local": [9.2]}]
    histogram = fleet_hour_histogram(payloads)
    assert histogram.sum() == 4
    assert histogram[0] == 1 and histogram[9] == 2 and histogram[23] == 1


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------
def test_cli_list_run_resume(tmp_path, capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "capacity_crunch" in out and "single_region_k80" in out

    json_path = tmp_path / "fleets.json"
    code = main(["run", "single_region_k80", "--workers", "2",
                 "--cache-dir", str(tmp_path / "cache"), "--seed", "2",
                 "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 computed" in out and "fleet scenario" in out
    data = json.loads(json_path.read_text())
    assert data["scenario"] == "single_region_k80"
    assert len(data["fleets"]) == 2

    assert main(["resume", "single_region_k80", "--seed", "2"]) == 2
    code = main(["resume", "single_region_k80", "--seed", "2",
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    assert "2 cached, 0 computed" in capsys.readouterr().out

    assert main(["run", "no-such-scenario"]) == 1
    assert "unknown scenario" in capsys.readouterr().err
