"""Tests for the fleet-scale scenario subsystem (repro.scenarios)."""

import dataclasses
import json

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.scenarios import (
    JobSpec,
    ScenarioSpec,
    TransientPool,
    apply_fleet_axes,
    build_fleet_spec,
    fleet_frontier_table,
    fleet_hour_histogram,
    fleet_summary_table,
    frontier_rows,
    get_scenario,
    list_scenarios,
    run_fleet,
    run_scenario,
)
from repro.scenarios.cli import build_parser, main
from repro.scenarios.fleet import FleetRun
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import get_sweep
from repro.sweeps.result import CellResult, SweepResult


def tiny_scenario(**overrides):
    """A two-job fleet small enough for unit tests."""
    defaults = dict(
        name="tiny",
        description="two tiny jobs",
        jobs=(
            JobSpec(name="a", model_name="resnet_15", total_steps=600,
                    workers=(("k80", "us-west1"),) * 2,
                    checkpoint_interval_steps=500),
            JobSpec(name="b", model_name="resnet_15", total_steps=600,
                    workers=(("k80", "us-west1"),) * 2,
                    checkpoint_interval_steps=500),
        ),
        pool_capacity={("k80", "us-west1"): 5},
        reclaim_seconds=600.0,
        epoch_hour_utc=9.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ---------------------------------------------------------------------------
# Specs.
# ---------------------------------------------------------------------------
def test_scenario_spec_round_trips_through_json():
    scenario = get_scenario("multi_region_hetero")
    params = scenario.to_params()
    encoded = json.dumps(params, sort_keys=True)
    rebuilt = ScenarioSpec.from_params(json.loads(encoded))
    assert rebuilt == scenario
    assert rebuilt.to_params() == params


def test_scenario_spec_validation():
    job = JobSpec(name="a", model_name="resnet_15", total_steps=100,
                  workers=(("k80", "us-west1"),))
    with pytest.raises(ConfigurationError):  # pool smaller than the fleet
        ScenarioSpec(name="bad", description="", jobs=(job,),
                     pool_capacity={("k80", "us-west1"): 0})
    with pytest.raises(ConfigurationError):  # missing pool cell
        ScenarioSpec(name="bad", description="", jobs=(job,), pool_capacity={})
    with pytest.raises(ConfigurationError):  # duplicate job names
        ScenarioSpec(name="bad", description="", jobs=(job, job),
                     pool_capacity={("k80", "us-west1"): 4})
    with pytest.raises(ConfigurationError):  # region does not offer the GPU
        JobSpec(name="x", model_name="resnet_15", total_steps=100,
                workers=(("v100", "europe-west1"),))
    # Epoch hours normalize into [0, 24).
    spec = tiny_scenario(epoch_hour_utc=-5.0)
    assert spec.epoch_hour_utc == pytest.approx(19.0)
    with pytest.raises(ConfigurationError):
        tiny_scenario(warm_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        tiny_scenario(warm_capacity=-1)
    with pytest.raises(ConfigurationError):
        tiny_scenario(placement="no-such-mode")


def test_default_scenario_params_emit_no_new_keys():
    """The cold/static defaults must serialize exactly as before the warm
    pool and placement landed: the canonical JSON keys derived cell seeds
    and caches, so new keys would silently reshuffle every fleet payload."""
    params = tiny_scenario().to_params()
    assert set(params) == {
        "name", "description", "jobs", "pool_capacity", "reclaim_seconds",
        "epoch_hour_utc", "poll_interval_seconds"}
    # Non-default knobs do serialize, and round-trip through JSON.
    warm = tiny_scenario(warm_seconds=600.0, warm_capacity=2,
                         placement="adaptive")
    params = warm.to_params()
    assert params["warm_seconds"] == 600.0
    assert params["warm_capacity"] == 2
    assert params["placement"] == "adaptive"
    rebuilt = ScenarioSpec.from_params(json.loads(json.dumps(params)))
    assert rebuilt == warm
    assert rebuilt.to_params() == params
    for name in ("warm_reuse", "adaptive_placement"):
        scenario = get_scenario(name)
        rebuilt = ScenarioSpec.from_params(
            json.loads(json.dumps(scenario.to_params())))
        assert rebuilt == scenario


def test_adaptive_validation_aggregates_demand_per_gpu():
    """Adaptive placement may spread workers across regions, so demand is
    validated per GPU type; static keeps the strict per-cell check."""
    job = JobSpec(name="a", model_name="resnet_15", total_steps=100,
                  workers=(("k80", "europe-west1"),) * 3)
    # 3 workers declared in europe-west1, but only 2 + 2 slots split across
    # regions: fine for adaptive, rejected for static.
    capacity = {("k80", "europe-west1"): 2, ("k80", "us-west1"): 2}
    adaptive = ScenarioSpec(name="ok", description="", jobs=(job,),
                            pool_capacity=capacity, placement="adaptive")
    assert adaptive.placement == "adaptive"
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="bad", description="", jobs=(job,),
                     pool_capacity=capacity, placement="static")
    with pytest.raises(ConfigurationError):  # not enough k80 anywhere
        ScenarioSpec(name="bad", description="", jobs=(job,),
                     pool_capacity={("k80", "europe-west1"): 2},
                     placement="adaptive")


def test_named_scenarios_build_and_register():
    scenarios = list_scenarios()
    assert [s.name for s in scenarios] == [
        "single_region_k80", "multi_region_hetero", "revocation_storm",
        "capacity_crunch", "warm_reuse", "adaptive_placement"]
    with pytest.raises(ConfigurationError):
        get_scenario("no-such-scenario")
    # Every named scenario is also a registered fleet_<name> sweep.
    for scenario in scenarios:
        definition = get_sweep(f"fleet_{scenario.name}")
        assert len(definition.build_spec()) >= 2


# ---------------------------------------------------------------------------
# The shared pool.
# ---------------------------------------------------------------------------
def test_pool_denies_when_exhausted_and_reclaims_capacity():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 2}, reclaim_seconds=100.0)
    pool.acquire("k80", "us-west1")
    pool.acquire("k80", "us-west1")
    with pytest.raises(CapacityError):
        pool.acquire("k80", "us-west1")

    granted = []
    pool.revoke("k80", "us-west1")  # slot reclaimed for 100 s
    ticket = pool.request_replacement("k80", "us-west1",
                                      lambda warm: granted.append("now"))
    assert ticket.outcome == "denied" and granted == []
    assert pool.replacement_denial_rate == 1.0

    # A queued request is served FIFO when the reclaimed capacity returns.
    ticket = pool.request_replacement("k80", "us-west1",
                                      lambda warm: granted.append("first"),
                                      queue=True)
    assert ticket.outcome == "queued"
    ticket = pool.request_replacement("k80", "us-west1",
                                      lambda warm: granted.append("second"),
                                      queue=True)
    assert ticket.outcome == "queued"
    sim.run(until=99.0)
    assert granted == []
    sim.run(until=101.0)
    assert granted == ["first"]  # one slot back, one waiter served
    assert pool.pending_waiters("k80", "us-west1") == 1
    # A normal release (job completed) serves the remaining waiter.
    pool.release("k80", "us-west1")
    assert granted == ["first", "second"]
    stats = pool.stats()
    assert stats["replacements_denied"] == 1
    assert stats["replacements_granted"] == 2
    assert stats["cells"]["k80/us-west1"]["peak_in_use"] == 2


def test_pool_rejects_unknown_cells_and_misuse():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 1})
    with pytest.raises(CapacityError):
        pool.acquire("v100", "us-west1")
    with pytest.raises(CapacityError):
        pool.release("k80", "us-west1")
    with pytest.raises(ConfigurationError):
        TransientPool(sim, {})
    with pytest.raises(ConfigurationError):
        TransientPool(sim, {("k80", "us-west1"): 0})
    with pytest.raises(ConfigurationError):
        TransientPool(sim, {("k80", "us-west1"): 1}, warm_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        TransientPool(sim, {("k80", "us-west1"): 1}, warm_capacity=-1)


def test_pool_stats_are_clean_for_zero_request_fleets():
    """No replacement traffic: rates are exactly 0.0, never NaN/raise."""
    pool = TransientPool(Simulator(), {("k80", "us-west1"): 2})
    assert pool.replacement_denial_rate == 0.0
    assert pool.warm_reuse_rate == 0.0
    stats = pool.stats()
    assert stats["replacement_requests"] == 0
    assert stats["replacement_denial_rate"] == 0.0
    assert stats["replacement_denial_rate"] == stats["replacement_denial_rate"]
    # Optional counters stay out of the zero case (payload-identity rule).
    assert "replacements_cancelled" not in stats
    assert "replacements_warm" not in stats
    assert "warm" not in stats["cells"]["k80/us-west1"]
    assert json.dumps(stats)  # JSON-encodable without special handling


# ---------------------------------------------------------------------------
# Versioned snapshots.
# ---------------------------------------------------------------------------
def test_pool_version_bumps_on_every_observable_transition():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 2}, reclaim_seconds=50.0,
                         warm_seconds=30.0, warm_capacity=1)

    def bumped(action):
        before = pool.version
        action()
        assert pool.version > before, action

    bumped(lambda: pool.acquire("k80", "us-west1"))
    bumped(lambda: pool.acquire("k80", "us-west1"))
    bumped(lambda: pool.release("k80", "us-west1"))
    bumped(lambda: pool.acquire("k80", "us-west1"))
    bumped(lambda: pool.revoke("k80", "us-west1"))
    # The cell is now exhausted (1 in use, 1 reclaimed, 0 free).
    # Queueing a waiter is observable (pending_waiters changes)...
    ticket = pool.request_replacement("k80", "us-west1", lambda warm: None,
                                      queue=True)
    assert ticket.outcome == "queued"
    # ...and so are cancelling it, the reclaim return (which parks the slot
    # warm), and the warm cooldown.
    bumped(ticket.cancel)
    bumped(lambda: sim.run(until=51.0))   # reclaim return -> warm park
    assert pool.warm_count("k80", "us-west1") == 1
    bumped(lambda: sim.run(until=81.0))   # cooldown -> cold capacity
    assert pool.warm_count("k80", "us-west1") == 0
    # Taking the cold slot back (replacement grant) bumps too.
    bumped(lambda: pool.request_replacement("k80", "us-west1",
                                            lambda warm: None))


def test_snapshot_is_cached_per_version_and_frozen():
    pool = TransientPool(Simulator(), {("k80", "us-west1"): 3})
    first = pool.snapshot()
    assert pool.snapshot() is first  # no transition: the same object
    assert first.version == pool.version

    pool.acquire("k80", "us-west1")
    second = pool.snapshot()
    assert second is not first
    assert second.version == pool.version > first.version
    # The old snapshot still describes its own epoch, untouched.
    assert first.available("k80", "us-west1") == 3
    assert second.available("k80", "us-west1") == 2
    with pytest.raises(dataclasses.FrozenInstanceError):
        second.version = 0


def test_snapshot_reads_match_the_live_pool():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 3,
                               ("v100", "europe-west1"): 2},
                         reclaim_seconds=100.0)
    pool.acquire("k80", "us-west1")
    pool.acquire("k80", "us-west1")
    pool.revoke("k80", "us-west1")
    pool.request_replacement("v100", "europe-west1", lambda warm: None)
    snapshot = pool.snapshot()
    assert snapshot.cells() == pool.cells()
    for gpu, region in pool.cells():
        for reader in ("capacity", "available", "warm_count", "acquirable",
                       "in_use", "pending_waiters"):
            assert getattr(snapshot, reader)(gpu, region) == \
                getattr(pool, reader)(gpu, region), (reader, gpu, region)
    # Unknown cells fail identically on both sides.
    with pytest.raises(CapacityError, match="no 'p100' capacity"):
        pool.available("p100", "us-west1")
    with pytest.raises(CapacityError, match="no 'p100' capacity"):
        snapshot.available("p100", "us-west1")


# ---------------------------------------------------------------------------
# Warm pool (Fig. 10 warm path at pool level).
# ---------------------------------------------------------------------------
def test_warm_pool_serves_reclaimed_capacity_warm_then_cools_down():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 2}, reclaim_seconds=100.0,
                         warm_seconds=50.0, warm_capacity=2)
    assert pool.warm_enabled
    pool.acquire("k80", "us-west1")
    pool.acquire("k80", "us-west1")
    pool.revoke("k80", "us-west1")
    # The reclaimed slot returns at t=100 as a *warm* server.
    sim.run(until=101.0)
    assert pool.warm_count("k80", "us-west1") == 1
    assert pool.available("k80", "us-west1") == 0
    assert pool.acquirable("k80", "us-west1") == 1
    # A replacement granted from it is flagged warm.
    grants = []
    ticket = pool.request_replacement("k80", "us-west1",
                                      lambda warm: grants.append(warm))
    assert ticket.outcome == "granted" and ticket.warm
    assert grants == [True]
    assert pool.replacements_warm == 1
    assert pool.warm_reuse_rate == 1.0
    stats = pool.stats()
    assert stats["replacements_warm"] == 1
    assert stats["cells"]["k80/us-west1"]["peak_warm"] == 1

    # A warm server nobody takes cools down into plain cold capacity.
    pool.revoke("k80", "us-west1")
    sim.run(until=202.0)  # reclaim returns at 201 -> warm until 251
    assert pool.warm_count("k80", "us-west1") == 1
    sim.run(until=252.0)
    assert pool.warm_count("k80", "us-west1") == 0
    assert pool.available("k80", "us-west1") == 1
    ticket = pool.request_replacement("k80", "us-west1",
                                      lambda warm: grants.append(warm))
    assert ticket.outcome == "granted" and not ticket.warm
    assert grants == [True, False]


def test_warm_pool_never_returns_a_slot_twice():
    """A warm server taken before its cooldown must not resurrect."""
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 1}, reclaim_seconds=10.0,
                         warm_seconds=1000.0, warm_capacity=1)
    pool.acquire("k80", "us-west1")
    pool.revoke("k80", "us-west1")
    sim.run(until=11.0)
    assert pool.warm_count("k80", "us-west1") == 1
    assert pool.request_replacement("k80", "us-west1",
                                    lambda warm: None).warm
    # Drain the pending cooldown event: capacity must not reappear.
    sim.run()
    state = pool._states[("k80", "us-west1")]
    assert state.in_use == 1 and state.warm == 0 and state.reclaimed == 0
    assert state.available == 0
    assert state.in_use + state.available + state.warm + state.reclaimed \
        == state.capacity


def test_warm_capacity_zero_is_cold_only():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 1}, reclaim_seconds=10.0,
                         warm_seconds=1000.0, warm_capacity=0)
    assert not pool.warm_enabled
    pool.acquire("k80", "us-west1")
    pool.revoke("k80", "us-west1")
    sim.run()
    assert pool.warm_count("k80", "us-west1") == 0
    assert pool.available("k80", "us-west1") == 1
    ticket = pool.request_replacement("k80", "us-west1", lambda warm: None)
    assert ticket.outcome == "granted" and not ticket.warm


def test_warm_capacity_caps_the_warm_set():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 3}, reclaim_seconds=10.0,
                         warm_seconds=1000.0, warm_capacity=1)
    for _ in range(3):
        pool.acquire("k80", "us-west1")
    for _ in range(3):
        pool.revoke("k80", "us-west1")
    sim.run(until=11.0)
    # Only one of the three returning slots may park warm; the others
    # return cold immediately.
    assert pool.warm_count("k80", "us-west1") == 1
    assert pool.available("k80", "us-west1") == 2
    assert pool.acquirable("k80", "us-west1") == 3


# ---------------------------------------------------------------------------
# Queued-request cancellation.
# ---------------------------------------------------------------------------
def test_replacement_ticket_cancel_withdraws_a_queued_request():
    sim = Simulator()
    pool = TransientPool(sim, {("k80", "us-west1"): 1}, reclaim_seconds=50.0)
    pool.acquire("k80", "us-west1")
    pool.revoke("k80", "us-west1")
    grants = []
    dead = pool.request_replacement("k80", "us-west1",
                                    lambda warm: grants.append("dead"),
                                    queue=True)
    live = pool.request_replacement("k80", "us-west1",
                                    lambda warm: grants.append("live"),
                                    queue=True)
    assert dead.outcome == "queued" and live.outcome == "queued"
    assert pool.pending_waiters("k80", "us-west1") == 2
    assert dead.cancel()
    assert dead.cancelled
    assert not dead.cancel()  # idempotent: a second cancel is a no-op
    assert pool.pending_waiters("k80", "us-west1") == 1
    assert pool.replacements_cancelled == 1
    # The returning slot goes straight to the surviving waiter.
    sim.run(until=51.0)
    assert grants == ["live"]
    assert pool.stats()["replacements_cancelled"] == 1
    # Granted/denied tickets have nothing to cancel.
    pool2 = TransientPool(Simulator(), {("k80", "us-west1"): 1})
    granted = pool2.request_replacement("k80", "us-west1", lambda warm: None)
    assert granted.outcome == "granted" and not granted.cancel()
    denied = pool2.request_replacement("k80", "us-west1", lambda warm: None)
    assert denied.outcome == "denied" and not denied.cancel()


def test_fleet_job_cancels_queued_requests_when_it_finishes(catalog):
    """A session that finishes while its replacement is still queued must
    withdraw the request instead of leaving a dead waiter behind."""
    scenario = tiny_scenario(
        name="finish-while-queued",
        jobs=(JobSpec(name="short", model_name="resnet_15", total_steps=600,
                      workers=(("k80", "us-west1"),) * 2,
                      checkpoint_interval_steps=500,
                      queue_replacements=True),),
        pool_capacity={("k80", "us-west1"): 2},
        reclaim_seconds=86_400.0)
    run = FleetRun(scenario, RandomStreams(seed=0), catalog=catalog)
    fleet_job = run.jobs[0]
    run.simulator.run(until=1.0)  # fire the job-start event (t=0) only
    session, controller = fleet_job.session, fleet_job.controller
    worker = next(iter(session.workers.values()))
    assert run.pool.in_use("k80", "us-west1") == 2
    # Revoke one worker with the pool exhausted: the request queues.
    run.pool.revoke("k80", "us-west1")
    session.handle_revocation(worker.worker_id)
    assert controller.replacements_pending == 1
    assert run.pool.pending_waiters("k80", "us-west1") == 1
    # The remaining worker finishes the job; the queued request dies with it.
    run.run()
    assert session.finished
    assert controller.replacements_pending == 0
    assert controller.replacements_cancelled == 1
    assert run.pool.pending_waiters("k80", "us-west1") == 0
    assert run.pool.replacements_cancelled == 1
    # Nothing left in the heap may revive or re-grant anything.
    run.simulator.run()
    assert run.pool.replacements_granted == 0


# ---------------------------------------------------------------------------
# Fleet runs.
# ---------------------------------------------------------------------------
def test_run_fleet_completes_all_jobs(catalog):
    payload = run_fleet(tiny_scenario(), RandomStreams(seed=3), catalog=catalog)
    assert payload["jobs_total"] == 2
    assert payload["jobs_completed"] == 2
    assert payload["jobs_stalled"] == 0
    assert payload["makespan_seconds"] > 0
    assert payload["total_cost_usd"] > 0
    assert payload["epoch_hour_utc"] == pytest.approx(9.0)
    for job in payload["jobs"]:
        assert job["completed"] and job["steps_done"] >= 600
    # Pool bookkeeping balances: everything acquired was returned.
    cell = payload["pool"]["cells"]["k80/us-west1"]
    assert cell["in_use"] == 0 and cell["peak_in_use"] == 4


def test_fleet_scenario_serial_vs_parallel_bit_identity(catalog):
    """The sweeps contract extends to whole fleets: workers=2 == serial."""
    scenario = get_scenario("single_region_k80")
    serial = run_scenario(scenario, replicates=3, seed=11, workers=1,
                          catalog=catalog)
    parallel = run_scenario(scenario, replicates=3, seed=11, workers=2,
                            catalog=catalog)
    assert serial.payloads() == parallel.payloads()
    assert [r.seed for r in serial] == [r.seed for r in parallel]


def test_fleet_fast_forward_matches_chunked_path(catalog, monkeypatch):
    """The PR 2 core contract extends to fleets: both paths, same floats."""
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "1")
    fast = run_fleet(tiny_scenario(), RandomStreams(seed=7), catalog=catalog)
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", "0")
    chunked = run_fleet(tiny_scenario(), RandomStreams(seed=7), catalog=catalog)
    assert fast == chunked


def test_fleet_run_forwards_core_path_override(catalog):
    """The fast_forward argument must reach every session, not just the env."""
    chunked_run = FleetRun(tiny_scenario(), RandomStreams(seed=2),
                           catalog=catalog, fast_forward=False)
    assert all(not job.session.fast_forward_enabled for job in chunked_run.jobs)
    chunked = chunked_run.run()
    assert all(job.session.fast_forward_chunks == 0 for job in chunked_run.jobs)
    fast_run = FleetRun(tiny_scenario(), RandomStreams(seed=2),
                        catalog=catalog, fast_forward=True)
    assert all(job.session.fast_forward_enabled for job in fast_run.jobs)
    assert fast_run.run() == chunked


def test_mitigation_parameter_servers_are_billed(catalog):
    """A PS added by bottleneck mitigation accrues cost from its add time."""
    run = FleetRun(get_scenario("multi_region_hetero"), RandomStreams(seed=0),
                   catalog=catalog)
    run.run()
    job = next(fj for fj in run.jobs
               if any(a.kind == "mitigation" for a in fj.controller.actions))
    end = job.end_time(run.simulator.now)
    with_mitigation = run._job_cost(job, end)
    job.controller.actions = [a for a in job.controller.actions
                              if a.kind != "mitigation"]
    assert run._job_cost(job, end) < with_mitigation


def test_fleet_cache_resume(tmp_path, catalog):
    scenario = tiny_scenario()
    cold = run_scenario(scenario, replicates=2, seed=5, cache_dir=tmp_path,
                        catalog=catalog)
    assert cold.cache_misses == 2
    warm = run_scenario(scenario, replicates=2, seed=5, cache_dir=tmp_path,
                        catalog=catalog)
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert warm.payloads() == cold.payloads()


def test_capacity_crunch_reports_replacement_denials(catalog):
    """The acceptance scenario: a crunched pool denies replacements."""
    result = run_scenario(get_scenario("capacity_crunch"), replicates=2,
                          seed=0, catalog=catalog)
    payloads = result.payloads()
    assert sum(p["replacements_denied"] for p in payloads) > 0
    assert max(p["replacement_denial_rate"] for p in payloads) > 0.0
    # Denied replacements are never admitted: the pool never grows back.
    for payload in payloads:
        assert payload["replacements_admitted"] == 0
        assert payload["revocations"] == payload["replacements_denied"]
        assert payload["jobs_completed"] + payload["jobs_stalled"] \
            == payload["jobs_total"]


def test_stalled_fleet_stops_at_the_stall_not_the_reclaim_horizon(catalog):
    """A stalled job must not drag makespan/cost to the 24h reclaim events.

    capacity_crunch at seed 1 stalls one job; the fleet clock has to stop
    at the last meaningful moment (~1.4h), not drain pool-reclaim events
    scheduled a day out and bill idle parameter servers the whole time.
    """
    payload = run_fleet(get_scenario("capacity_crunch"),
                        RandomStreams(seed=1), catalog=catalog)
    assert payload["jobs_stalled"] >= 1
    assert payload["makespan_seconds"] < 6 * 3600.0
    ends = [job["end_time_seconds"] for job in payload["jobs"]]
    assert payload["makespan_seconds"] == pytest.approx(max(ends))
    completed_costs = [j["cost_usd"] for j in payload["jobs"] if j["completed"]]
    stalled_costs = [j["cost_usd"] for j in payload["jobs"] if j["stalled"]]
    # A stalled job stops billing at its stall: same order of magnitude as
    # the jobs that ran to completion, not a day of idle parameter servers.
    assert max(stalled_costs) < 2 * max(completed_costs)


def test_pending_count_survives_cross_cell_synchronous_grant(catalog):
    """A grant in one (gpu, region) cell must not eat another cell's
    queued-request count, or the job would be falsely marked stalled."""
    scenario = ScenarioSpec(
        name="mixed", description="two cells, one queued waiter",
        jobs=(JobSpec(name="m", model_name="resnet_15", total_steps=50_000,
                      workers=(("k80", "europe-west1"),
                               ("p100", "europe-west1")),
                      queue_replacements=True),),
        pool_capacity={("k80", "europe-west1"): 1,
                       ("p100", "europe-west1"): 2},
        reclaim_seconds=86_400.0, epoch_hour_utc=9.0)
    run = FleetRun(scenario, RandomStreams(seed=0), catalog=catalog)
    fleet_job = run.jobs[0]
    run.simulator.run(until=100.0)  # fire the job-start event
    session, controller = fleet_job.session, fleet_job.controller
    k80, p100 = list(session.workers.values())[:2]
    # Exhausted k80 cell: the replacement request queues.
    run.pool.revoke("k80", "europe-west1")
    session.handle_revocation(k80.worker_id)
    assert controller.replacements_pending == 1
    # The p100 cell still has a free slot: synchronous grant — which must
    # leave the k80 cell's queued request pending.
    run.pool.revoke("p100", "europe-west1")
    session.handle_revocation(p100.worker_id)
    assert controller.replacements_pending == 1
    assert run.pool.pending_waiters("k80", "europe-west1") == 1
    assert not fleet_job.stalled  # the queued waiter can still revive it


def test_exhausted_pool_queues_and_revives_jobs(catalog):
    """A queued replacement is granted once another job releases capacity."""
    scenario = tiny_scenario(
        name="tight",
        jobs=(
            JobSpec(name="a", model_name="resnet_15", total_steps=400,
                    workers=(("k80", "europe-west1"),) * 2,
                    checkpoint_interval_steps=500),
            JobSpec(name="b", model_name="resnet_15", total_steps=30_000,
                    workers=(("k80", "europe-west1"),) * 2,
                    checkpoint_interval_steps=4000,
                    queue_replacements=True),
        ),
        pool_capacity={("k80", "europe-west1"): 4},
        reclaim_seconds=86_400.0,  # reclaimed capacity never returns
        epoch_hour_utc=8.5,
    )
    # Find a seed where the long job is revoked while the pool is full and
    # later revived by the short job's released slots.
    for seed in range(30):
        payload = run_fleet(scenario, RandomStreams(seed=seed),
                            catalog=catalog)
        pool = payload["pool"]
        if pool["replacements_queued"] > 0 and pool["replacements_granted"] > 0:
            assert payload["jobs"][1]["replacements_admitted"] > 0
            break
    else:
        pytest.fail("no seed exercised the queued-replacement revival path")


# ---------------------------------------------------------------------------
# Reporting.
# ---------------------------------------------------------------------------
def test_fleet_summary_table_golden():
    """Golden rendering of the fleet table from synthetic payloads."""
    spec = build_fleet_spec(tiny_scenario(), replicates=2)
    payloads = [
        {"jobs_completed": 2, "jobs_total": 2, "jobs_stalled": 0,
         "makespan_seconds": 7200.0, "total_cost_usd": 1.25, "revocations": 3,
         "replacements_admitted": 2, "replacements_denied": 1,
         "replacement_denial_rate": 1 / 3, "ps_mitigations": 1},
        {"jobs_completed": 1, "jobs_total": 2, "jobs_stalled": 1,
         "makespan_seconds": 3600.0, "total_cost_usd": 0.5, "revocations": 4,
         "replacements_admitted": 0, "replacements_denied": 4,
         "replacement_denial_rate": 1.0, "ps_mitigations": 0},
    ]
    result = SweepResult(spec=spec, results=[
        CellResult(cell=cell, payload=payload, seed=0, cached=False,
                   duration_seconds=0.0)
        for cell, payload in zip(spec.cells(), payloads)])
    golden = "\n".join([
        "fleet scenario 'tiny'",
        "replicate | jobs done | stalled | makespan (h) | cost (USD) | "
        "revocations | absorbed | denied | denial rate | PS mitigations",
        "----------+-----------+---------+--------------+------------+-"
        "------------+----------+--------+-------------+---------------",
        "0         | 2/2       | 0       | 2.000        | 1.250      | "
        "3           | 2        | 1      | 0.333       | 1             ",
        "1         | 1/2       | 1       | 1.000        | 0.500      | "
        "4           | 0        | 4      | 1.000       | 0             ",
    ])
    assert fleet_summary_table(result) == golden


def test_fleet_hour_histogram_bins_revocation_hours():
    payloads = [{"revocation_hours_local": [0.5, 9.9, 23.99]},
                {"revocation_hours_local": [9.2]}]
    histogram = fleet_hour_histogram(payloads)
    assert histogram.sum() == 4
    assert histogram[0] == 1 and histogram[9] == 2 and histogram[23] == 1


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------
def test_cli_list_run_resume(tmp_path, capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "capacity_crunch" in out and "single_region_k80" in out

    json_path = tmp_path / "fleets.json"
    code = main(["run", "single_region_k80", "--workers", "2",
                 "--cache-dir", str(tmp_path / "cache"), "--seed", "2",
                 "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 computed" in out and "fleet scenario" in out
    data = json.loads(json_path.read_text())
    assert data["scenario"] == "single_region_k80"
    assert len(data["fleets"]) == 2

    assert main(["resume", "single_region_k80", "--seed", "2"]) == 2
    code = main(["resume", "single_region_k80", "--seed", "2",
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    assert "2 cached, 0 computed" in capsys.readouterr().out

    assert main(["run", "no-such-scenario"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_warm_and_placement_flags_round_trip(tmp_path, capsys):
    """--warm-seconds / --placement parse, round-trip, and reach the run."""
    parser = build_parser()
    args = parser.parse_args(["run", "warm_reuse", "--warm-seconds", "120.5",
                              "--placement", "adaptive"])
    assert args.warm_seconds == 120.5 and args.placement == "adaptive"
    args = parser.parse_args(["resume", "warm_reuse"])
    assert args.warm_seconds is None and args.placement is None
    with pytest.raises(SystemExit):  # argparse rejects unknown placements
        parser.parse_args(["run", "warm_reuse", "--placement", "bogus"])

    json_path = tmp_path / "fleets.json"
    code = main(["run", "single_region_k80", "--warm-seconds", "900",
                 "--placement", "adaptive", "--seed", "3",
                 "--json", str(json_path)])
    assert code == 0
    capsys.readouterr()
    for payload in json.loads(json_path.read_text())["fleets"]:
        assert payload["placement"] == "adaptive"
        assert "replacements_warm" in payload
        assert "warm" in payload["pool"]["cells"]["k80/us-west1"]

    # --warm-seconds 0 forces cold-only: no warm keys in the payload.
    code = main(["run", "single_region_k80", "--warm-seconds", "0",
                 "--seed", "3", "--json", str(json_path)])
    assert code == 0
    capsys.readouterr()
    for payload in json.loads(json_path.read_text())["fleets"]:
        assert "replacements_warm" not in payload

    # Invalid values surface as the CLI's usual error line, not a crash.
    assert main(["run", "single_region_k80", "--warm-seconds", "-5"]) == 1
    assert "warm_seconds" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Warm-reuse fleets (Fig. 10 warm path under contention).
# ---------------------------------------------------------------------------
def test_warm_reuse_scenario_grants_warm_replacements(catalog):
    payload = run_fleet(get_scenario("warm_reuse"), RandomStreams(seed=0),
                        catalog=catalog)
    assert payload["replacements_warm"] >= 1
    assert 0.0 < payload["warm_reuse_rate"] <= 1.0
    assert payload["pool"]["replacements_warm"] == payload["replacements_warm"]
    assert sum(job["replacements_warm"] for job in payload["jobs"]) \
        == payload["replacements_warm"]
    cell = payload["pool"]["cells"]["k80/europe-west1"]
    assert cell["peak_warm"] >= 1
    # Conservation still holds at the end of the run.
    assert cell["in_use"] + cell["reclaimed"] + cell["warm"] <= cell["capacity"]


def test_warm_reuse_overhead_is_cheaper_than_cold(catalog):
    """The warm path a warm grant pays must undercut the cold path."""
    from repro.perf.replacement import ReplacementOverheadModel

    profile = catalog.profile("resnet_15")
    model = ReplacementOverheadModel()
    cold_mean = model.mean_total(profile, cold=True)
    warm = model.sample_warm_reuse(profile, gpu_name="k80")
    assert warm.server_startup > 0.0  # the re-acquire handshake
    assert warm.dataset_download == 0.0  # the shard is already on disk
    assert warm.total < cold_mean / 2


# The scheduler x core-path identity contract for warm and adaptive
# fleets is covered by the golden matrix in tests/test_fleet_scheduler.py,
# whose SCENARIOS tuple includes warm_reuse and adaptive_placement.


# ---------------------------------------------------------------------------
# Adaptive placement.
# ---------------------------------------------------------------------------
def test_adaptive_placement_lowers_denial_rate_on_the_crunch(catalog):
    """The acceptance contract: pool-aware placement beats static pinning
    under the capacity-crunch regime (same jobs, same pool, same seeds)."""
    adaptive = get_scenario("adaptive_placement")
    static = dataclasses.replace(adaptive, placement="static")
    for seed in (0, 1):
        adaptive_payload = run_fleet(adaptive, RandomStreams(seed=seed),
                                     catalog=catalog)
        static_payload = run_fleet(static, RandomStreams(seed=seed),
                                   catalog=catalog)
        assert static_payload["replacement_denial_rate"] > 0.0
        assert adaptive_payload["replacement_denial_rate"] \
            < static_payload["replacement_denial_rate"]
        # Static never touches the spare region; adaptive does.
        spare = static_payload["pool"]["cells"]["k80/us-west1"]
        assert spare["peak_in_use"] == 0
        assert adaptive_payload["pool"]["cells"]["k80/us-west1"]["peak_in_use"] > 0
        assert adaptive_payload["placement"] == "adaptive"
        assert "placements_redirected" in adaptive_payload
        assert "placement" not in static_payload


def test_adaptive_launch_spreads_workers_by_live_availability(catalog):
    """At launch the advisor fills the safer region first, then overflows."""
    run = FleetRun(get_scenario("adaptive_placement"), RandomStreams(seed=0),
                   catalog=catalog)
    placements = [key for job in run.jobs for key in job.spec.workers]
    in_spare = sum(1 for _gpu, region in placements if region == "us-west1")
    # us-west1 scores safer than storm-hour europe-west1, so its 6 slots
    # fill first; the remaining 3 workers overflow to europe-west1.
    assert in_spare == 6
    assert sum(1 for _gpu, region in placements
               if region == "europe-west1") == 3
    assert run.pool.in_use("k80", "us-west1") == 6
    assert run.pool.in_use("k80", "europe-west1") == 3


def test_denied_replacement_redirects_to_feasible_cell(catalog):
    """When the preferred cell is exhausted, the controller redirects the
    replacement to the advisor's next-best feasible cell."""
    scenario = ScenarioSpec(
        name="redirect", description="one job, spare second region",
        jobs=(JobSpec(name="r", model_name="resnet_15", total_steps=50_000,
                      workers=(("k80", "us-west1"),) * 3,
                      queue_replacements=False),),
        pool_capacity={("k80", "us-west1"): 3, ("k80", "europe-west1"): 2},
        reclaim_seconds=86_400.0, epoch_hour_utc=9.0, placement="adaptive")
    run = FleetRun(scenario, RandomStreams(seed=0), catalog=catalog)
    fleet_job = run.jobs[0]
    # The advisor placed all three workers in the safer us-west1 cell.
    assert fleet_job.spec.workers == (("k80", "us-west1"),) * 3
    run.simulator.run(until=1.0)  # fire the job-start event
    session, controller = fleet_job.session, fleet_job.controller
    worker = next(iter(session.workers.values()))
    # Revoke one worker: us-west1 is now exhausted (2 in use + 1 reclaimed)
    # but europe-west1 still has capacity, so the request redirects there.
    run.pool.revoke("k80", "us-west1")
    session.handle_revocation(worker.worker_id)
    assert controller.placements_redirected == 1
    assert controller.replacements_admitted == 1
    assert controller.replacements_denied == 0
    assert run.pool.in_use("k80", "europe-west1") == 1
    replacement = list(session.workers.values())[-1]
    assert replacement.spec.region_name == "europe-west1"
    actions = [a.kind for a in controller.actions]
    assert "replacement-redirected" in actions


# ---------------------------------------------------------------------------
# Multi-axis fleet sweeps and the frontier table.
# ---------------------------------------------------------------------------
def test_apply_fleet_axes_derives_scenarios():
    tiny = tiny_scenario()
    assert apply_fleet_axes(tiny, {"replicate": 0}) is tiny  # no-op

    scaled = apply_fleet_axes(tiny, {"pool_size": 2.0})
    assert scaled.pool_capacity[("k80", "us-west1")] == 10
    # Scaling down floors at the initial demand so the fleet stays
    # launchable (tiny needs 4 workers up front).
    floored = apply_fleet_axes(tiny, {"pool_size": 0.25})
    assert floored.pool_capacity[("k80", "us-west1")] == 4

    queued = apply_fleet_axes(tiny, {"queue_policy": "queue"})
    assert all(job.queue_replacements for job in queued.jobs)
    denied = apply_fleet_axes(queued, {"queue_policy": "deny"})
    assert not any(job.queue_replacements for job in denied.jobs)

    warm = apply_fleet_axes(tiny, {"warm_seconds": 900.0})
    assert warm.warm_seconds == 900.0
    assert warm.warm_capacity == 5  # defaults to the largest cell capacity
    cold = apply_fleet_axes(tiny, {"warm_seconds": 0.0})
    assert cold.warm_capacity == 0 and cold.warm_seconds == 0.0

    moved = apply_fleet_axes(tiny, {"launch_hour": 25.0})
    assert moved.epoch_hour_utc == pytest.approx(1.0)

    adaptive = apply_fleet_axes(tiny, {"placement": "adaptive"})
    assert adaptive.placement == "adaptive"

    with pytest.raises(ConfigurationError):
        apply_fleet_axes(tiny, {"pool_size": 0.0})
    with pytest.raises(ConfigurationError):
        apply_fleet_axes(tiny, {"queue_policy": "maybe"})
    with pytest.raises(ConfigurationError):
        apply_fleet_axes(tiny, {"placement": "bogus"})


def test_build_fleet_spec_axes_and_validation():
    tiny = tiny_scenario()
    classic = build_fleet_spec(tiny, replicates=3)
    assert classic.axis_names == ("replicate",)
    assert len(classic) == 3
    # Replicate-only cells carry exactly the pre-multi-axis parameters.
    assert set(classic.cells()[0].params) == {"replicate", "scenario"}

    grid = build_fleet_spec(tiny, replicates=2, pool_sizes=(1.0, 2.0),
                            queue_policies=("deny", "queue"),
                            warm_seconds=(0.0, 900.0),
                            launch_hours=(4.0,),
                            placements=("static",))
    assert grid.axis_names == ("pool_size", "queue_policy", "warm_seconds",
                               "launch_hour", "placement", "replicate")
    assert len(grid) == 2 * 2 * 2 * 1 * 1 * 2
    with pytest.raises(ConfigurationError):  # bad axis values fail eagerly
        build_fleet_spec(tiny, replicates=2, queue_policies=("maybe",))
    with pytest.raises(ConfigurationError):
        build_fleet_spec(tiny, replicates=2, pool_sizes=(0.0,))


def test_multi_axis_sweep_serial_parallel_and_cache_identity(tmp_path, catalog):
    """The sweeps contracts extend to multi-axis fleet grids: workers=2,
    serial, and warm-cache resume are all bit-identical."""
    tiny = tiny_scenario()
    axes = dict(pool_sizes=(1.0, 2.0), warm_seconds=(0.0, 900.0))
    serial = run_scenario(tiny, replicates=2, seed=11, workers=1,
                          catalog=catalog, cache_dir=tmp_path, **axes)
    assert serial.cache_misses == 8
    parallel = run_scenario(tiny, replicates=2, seed=11, workers=2,
                            catalog=catalog, **axes)
    assert serial.payloads() == parallel.payloads()
    assert [r.seed for r in serial] == [r.seed for r in parallel]
    resumed = run_scenario(tiny, replicates=2, seed=11, workers=1,
                           catalog=catalog, cache_dir=tmp_path, **axes)
    assert resumed.cache_hits == 8 and resumed.cache_misses == 0
    assert resumed.payloads() == serial.payloads()
    # The warm cells actually enabled the warm pool; the cold cells did not.
    by_warm = {}
    for cell_result in serial:
        by_warm.setdefault(cell_result.cell.params["warm_seconds"],
                           []).append(cell_result.payload)
    assert all("replacements_warm" in p for p in by_warm[900.0])
    assert all("replacements_warm" not in p for p in by_warm[0.0])


def test_frontier_table_aggregates_and_flags_pareto_rows():
    tiny = tiny_scenario()
    spec = build_fleet_spec(tiny, replicates=1, pool_sizes=(1.0, 2.0),
                            queue_policies=("deny", "queue"))

    def payload(makespan_h, cost, requests=0, denied=0, granted=0, warm=0):
        return {
            "makespan_seconds": makespan_h * 3600.0, "total_cost_usd": cost,
            "jobs_completed": 2, "jobs_total": 2,
            "replacements_denied": denied, "replacements_warm": warm,
            "pool": {"replacement_requests": requests,
                     "replacements_granted": granted},
        }

    # (pool_size, queue_policy) combos in row-major cell order:
    # (1, deny) dominated by (1, queue); (2, deny) and (2, queue) trade off.
    payloads = [payload(2.0, 1.0, requests=4, denied=2),
                payload(1.0, 1.0, requests=4, granted=4, warm=1),
                payload(0.5, 3.0),
                payload(3.0, 0.5)]
    result = SweepResult(spec=spec, results=[
        CellResult(cell=cell, payload=p, seed=0, cached=False,
                   duration_seconds=0.0)
        for cell, p in zip(spec.cells(), payloads)])
    headers, rows = frontier_rows(result)
    assert headers[:2] == ["pool_size", "queue_policy"]
    assert headers[-1] == "frontier"
    by_combo = {(row[0], row[1]): row for row in rows}
    assert by_combo[(1.0, "deny")][-1] == ""  # dominated
    assert by_combo[(1.0, "queue")][-1] == "*"
    assert by_combo[(2.0, "deny")][-1] == "*"
    assert by_combo[(2.0, "queue")][-1] == "*"
    # Pooled rates: denial 2/4 for (1, deny), warm 1/4 for (1, queue), and
    # exactly 0.0 (not NaN) for the request-free combos.
    assert by_combo[(1.0, "deny")][-3] == pytest.approx(0.5)
    assert by_combo[(1.0, "queue")][-2] == pytest.approx(0.25)
    assert by_combo[(2.0, "deny")][-3] == 0.0
    assert by_combo[(2.0, "deny")][-2] == 0.0
    table = fleet_frontier_table(result)
    assert table.splitlines()[0] == "fleet frontier 'tiny'"
    assert "frontier" in table.splitlines()[1]


def test_frontier_table_on_a_replicate_only_sweep(catalog):
    """With no extra axes the frontier collapses to one aggregate row."""
    result = run_scenario(tiny_scenario(), replicates=2, seed=5,
                          catalog=catalog)
    headers, rows = frontier_rows(result)
    assert headers[0] == "fleets"
    assert len(rows) == 1
    assert rows[0][0] == 2  # both replicates aggregated
    assert rows[0][-1] == "*"  # a single row is trivially on the frontier
    assert "fleet frontier" in fleet_frontier_table(result)
