"""Tests for the asynchronous training-session simulator."""

import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import TrainingJob, measurement_job
from repro.training.session import TrainingSession


def make_session(profile, cluster=None, steps=600, checkpoint_interval=None, seed=0,
                 **kwargs):
    cluster = cluster if cluster is not None else ClusterSpec.single("k80")
    if checkpoint_interval is None:
        job = measurement_job(profile, steps=steps)
    else:
        job = TrainingJob(profile=profile, total_steps=steps,
                          checkpoint_interval_steps=checkpoint_interval)
    return TrainingSession(Simulator(), cluster, job, streams=RandomStreams(seed),
                           **kwargs)


def test_single_worker_speed_matches_table1(resnet32_profile):
    session = make_session(resnet32_profile, steps=2000)
    trace = session.run_to_completion()
    # Table I: 4.56 steps/s for ResNet-32 on a K80 (ours is calibrated to
    # the paper's GFLOPs so a few percent deviation is expected).
    assert trace.cluster_speed() == pytest.approx(4.56, rel=0.05)
    assert session.finished
    assert trace.total_steps >= 2000


def test_speed_is_stable_after_warmup(resnet15_profile):
    session = make_session(resnet15_profile, steps=3000)
    trace = session.run_to_completion()
    assert trace.speed_stability() < 0.02  # Fig. 2: CoV of at most 0.02.


def test_cluster_speed_scales_with_workers(resnet15_profile):
    single = make_session(resnet15_profile, steps=1500).run_to_completion()
    quad = make_session(resnet15_profile, steps=1500,
                        cluster=ClusterSpec.from_counts(k80=4)).run_to_completion()
    ratio = quad.cluster_speed() / single.cluster_speed()
    assert 3.3 < ratio < 4.3


def test_checkpoints_happen_at_interval(resnet32_profile):
    session = make_session(resnet32_profile, steps=500, checkpoint_interval=100)
    trace = session.run_to_completion()
    # The final checkpoint at step 500 is skipped because training finishes.
    assert len(trace.checkpoint_records) == 4
    assert all(record.worker_id == "worker-0" for record in trace.checkpoint_records)
    assert trace.total_checkpoint_time() > 0


def test_checkpoint_storage_upload(resnet32_profile):
    from repro.cloud.storage import CloudStorage

    storage = CloudStorage("us-east1")
    session = make_session(resnet32_profile, steps=300, checkpoint_interval=100,
                           storage=storage)
    session.run_to_completion()
    assert len(storage.list_objects("checkpoints/resnet_32/")) == 2


def test_revocation_removes_worker_and_records(resnet15_profile):
    cluster = ClusterSpec.from_counts(k80=2)
    session = make_session(resnet15_profile, cluster=cluster, steps=2000)
    session.start()
    session.simulator.run(until=20.0)
    revoked = session.handle_revocation("worker-1")
    assert not revoked.active
    trace = session.run_to_completion()
    assert trace.num_revocations == 1
    assert not trace.revocation_records[0].was_chief
    assert session.finished


def test_chief_revocation_hands_off_checkpoint_role(resnet15_profile):
    cluster = ClusterSpec.from_counts(k80=2)
    session = make_session(resnet15_profile, cluster=cluster, steps=1500,
                           checkpoint_interval=400)
    session.start()
    session.simulator.run(until=10.0)
    session.handle_revocation("worker-0")
    assert session.chief() is not None
    assert session.chief().worker_id == "worker-1"
    trace = session.run_to_completion()
    # Checkpoints continue to be written by the new chief.
    assert any(record.worker_id == "worker-1" for record in trace.checkpoint_records)
    assert trace.revocation_records[0].was_chief


def test_all_workers_revoked_raises(resnet15_profile):
    session = make_session(resnet15_profile, steps=5000)
    session.start()
    session.simulator.run(until=5.0)
    session.handle_revocation("worker-0")
    with pytest.raises(TrainingError):
        session.run_to_completion()


def test_add_worker_speeds_up_training(resnet15_profile):
    session = make_session(resnet15_profile, steps=2000)
    session.start()
    session.simulator.run(until=10.0)
    session.add_worker(WorkerSpec(gpu_name="p100"), overhead_seconds=5.0)
    trace = session.run_to_completion()
    assert trace.num_replacements == 1
    assert len(trace.worker_ids()) == 2


def test_reuse_chief_ip_discards_progress(resnet15_profile):
    cluster = ClusterSpec.from_counts(k80=2)
    fast = make_session(resnet15_profile, cluster=cluster, steps=1200,
                        checkpoint_interval=400, seed=5)
    fast.start()
    fast.simulator.run(until=30.0)
    fast.handle_revocation("worker-0")
    fast.add_worker(WorkerSpec(gpu_name="k80"), overhead_seconds=1.0,
                    reuse_chief_ip=True)
    trace_legacy = fast.run_to_completion()

    clean = make_session(resnet15_profile, cluster=cluster, steps=1200,
                         checkpoint_interval=400, seed=5)
    clean.start()
    clean.simulator.run(until=30.0)
    clean.handle_revocation("worker-0")
    clean.add_worker(WorkerSpec(gpu_name="k80"), overhead_seconds=1.0,
                     reuse_chief_ip=False)
    trace_fresh = clean.run_to_completion()
    assert trace_legacy.duration > trace_fresh.duration


def test_add_parameter_server_restarts_session(resnet15_profile):
    cluster = ClusterSpec.from_counts(p100=6)
    session = make_session(resnet15_profile, cluster=cluster, steps=4000)
    session.start()
    session.simulator.run(until=10.0)
    before = session.ps_group.count
    session.add_parameter_server()
    assert session.ps_group.count == before + 1
    trace = session.run_to_completion()
    assert trace.total_steps >= 4000


def test_current_cluster_speed_analytics(resnet32_profile):
    cluster = ClusterSpec.from_counts(p100=8)
    session = make_session(resnet32_profile, cluster=cluster, steps=200)
    assert session.current_utilization() > 1.0
    assert session.current_slowdown() > 1.5
    single = make_session(resnet32_profile, steps=200)
    assert single.current_slowdown() == pytest.approx(1.0, abs=0.01)


def test_invalid_session_configuration(resnet32_profile):
    with pytest.raises(ConfigurationError):
        make_session(resnet32_profile, steps_per_event=0)
    with pytest.raises(ConfigurationError):
        make_session(resnet32_profile, chief_worker_index=5)


def test_deterministic_given_seed(resnet32_profile):
    first = make_session(resnet32_profile, steps=800, seed=9).run_to_completion()
    second = make_session(resnet32_profile, steps=800, seed=9).run_to_completion()
    assert first.duration == pytest.approx(second.duration)
    assert first.cluster_speed() == pytest.approx(second.cluster_speed())


def test_unknown_worker_revocation_rejected(resnet32_profile):
    session = make_session(resnet32_profile)
    with pytest.raises(TrainingError):
        session.handle_revocation("worker-99")
