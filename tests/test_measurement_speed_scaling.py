"""Tests for the speed and scaling measurement campaigns."""

import pytest

from repro.measurement.scaling_campaign import (
    run_cluster_scaling_campaign,
    run_ps_mitigation_campaign,
    run_worker_step_time_campaign,
)
from repro.measurement.speed_campaign import run_speed_campaign, run_speed_stability_campaign
from repro.perf.calibration import PAPER_TABLE1_SPEEDS
from repro.workloads.catalog import NAMED_MODELS


@pytest.fixture(scope="module")
def table1_campaign(catalog):
    return run_speed_campaign(model_names=NAMED_MODELS, steps=1200, seed=3,
                              catalog=catalog)


def test_table1_speeds_close_to_paper(table1_campaign):
    table = table1_campaign.table1()
    for gpu, rows in PAPER_TABLE1_SPEEDS.items():
        for model, (paper_speed, _std) in rows.items():
            measured, _measured_std = table[gpu][model]
            assert measured == pytest.approx(paper_speed, rel=0.08), (gpu, model)


def test_table1_ordering_faster_gpu_and_simpler_model(table1_campaign):
    table = table1_campaign.table1()
    for model in NAMED_MODELS:
        assert table["k80"][model][0] < table["p100"][model][0] < table["v100"][model][0]
    for gpu in ("k80", "p100", "v100"):
        assert (table[gpu]["resnet_15"][0] > table[gpu]["resnet_32"][0]
                > table[gpu]["shake_shake_small"][0] > table[gpu]["shake_shake_big"][0])


def test_speed_campaign_populates_profiler(table1_campaign):
    measurements = table1_campaign.measurements()
    assert len(measurements) == len(NAMED_MODELS) * 3
    assert {m.gpu_name for m in measurements} == {"k80", "p100", "v100"}
    cell = table1_campaign.cell("resnet_32", "k80")
    assert cell.computation_ratio == pytest.approx(cell.model_gflops / 4.11)
    with pytest.raises(KeyError):
        table1_campaign.cell("resnet_32", "tpu")


def test_speed_series_stable_after_warmup(catalog):
    series = run_speed_stability_campaign(gpu_name="k80", model_names=("resnet_15",),
                                          steps=1500, seed=2, catalog=catalog)
    points = [speed for step, speed in series["resnet_15"] if step > 100]
    assert len(points) >= 10
    mean = sum(points) / len(points)
    assert all(abs(p - mean) / mean < 0.1 for p in points)


def test_worker_step_time_campaign_matches_table3_shape(catalog):
    result = run_worker_step_time_campaign(steps=1200, seed=2, catalog=catalog)
    table = result.as_table()
    # K80 workers stay within a few percent of their baseline at any size.
    k80 = table["k80"]
    assert abs(k80["(8, 0, 0)"][0] - k80["baseline"][0]) / k80["baseline"][0] < 0.06
    # P100 and V100 workers slow down sharply once the PS saturates.
    assert table["p100"]["(0, 8, 0)"][0] > 1.6 * table["p100"]["baseline"][0]
    assert table["v100"]["(0, 0, 8)"][0] > 1.6 * table["v100"]["baseline"][0]
    assert table["v100"]["(0, 0, 4)"][0] > 1.2 * table["v100"]["baseline"][0]
    # Heterogeneity does not hurt the individual workers.
    for gpu in ("k80", "p100", "v100"):
        hetero = table[gpu]["(2, 1, 1)"][0]
        assert abs(hetero - table[gpu]["baseline"][0]) / table[gpu]["baseline"][0] < 0.08
    with pytest.raises(KeyError):
        result.cell("k80", "(9, 9, 9)")


def test_cluster_scaling_campaign_matches_fig4_shape(catalog):
    result = run_cluster_scaling_campaign(worker_counts=(1, 2, 4, 6, 8), steps=1200,
                                          seed=2, catalog=catalog)
    # ResNet-15 keeps improving through eight workers.
    assert result.plateau_ratio("resnet_15") > 5.0
    # ResNet-32 and Shake-Shake Small plateau well below linear scaling.
    assert result.plateau_ratio("resnet_32") < 4.5
    assert result.plateau_ratio("shake_shake_small") < 5.0
    # Shake-Shake Big does not benefit from extra P100 workers.
    assert result.plateau_ratio("shake_shake_big") < 1.6
    for series in result.series.values():
        speeds = [speed for _n, speed in series]
        assert all(b >= a * 0.95 for a, b in zip(speeds, speeds[1:]))


def test_ps_mitigation_campaign_shows_fig12_improvement(catalog):
    results = run_ps_mitigation_campaign(model_names=("resnet_32",),
                                         worker_counts=(2, 8), steps=1200, seed=2,
                                         catalog=catalog)
    one_ps = dict(results[1].speeds_for("resnet_32"))
    two_ps = dict(results[2].speeds_for("resnet_32"))
    # Small clusters are unaffected; saturated clusters improve substantially.
    assert two_ps[2] == pytest.approx(one_ps[2], rel=0.1)
    improvement = two_ps[8] / one_ps[8] - 1.0
    assert 0.4 < improvement < 0.9
