"""Deterministic chaos injection and the recovery contracts it pins.

The harness (:mod:`repro.chaos`) is only as good as the oracles it
drives, and the repo's oracles are bit-identity fixtures: a fleet run
that loses shard processes mid-run must still produce the byte-exact
golden payload, a sweep whose workers are killed must aggregate the
byte-exact clean payloads, and a telemetry export killed mid-write must
leave the artifact path untouched.  Every test here injects faults
through ``REPRO_CHAOS`` and asserts *exact* recovery, not approximate
health.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import chaos
from repro.chaos import ChaosMonitor, Fault, FaultPlan
from repro.errors import ConfigurationError, DataError
from repro.scenarios import get_scenario, run_fleet
from repro.scenarios.shard import ShardedFleetRun
from repro.simulation.rng import RandomStreams
from repro.sweeps import SweepExecutionError, SweepRunner, SweepSpec
from repro.telemetry.writer import TelemetryConfig, TelemetrySpool, write_npz

from test_shard import four_region_storm, normalized

DATA = pathlib.Path(__file__).parent / "data"
FIXTURE = DATA / "fleet_golden_multi_region_hetero_seed5.json"


# ---------------------------------------------------------------------------
# FaultPlan: spec grammar, matching, monitors.
# ---------------------------------------------------------------------------
def test_spec_round_trips():
    spec = ("shard_crash:shard=0,at=2;drop_grant:shard=1;"
            "serve_hang:at=3,seconds=1.5;sweep_kill:cell=4,incarnation=1;"
            "seed=9")
    plan = FaultPlan.from_spec(spec)
    assert plan.seed == 9
    assert len(plan.faults) == 4
    assert FaultPlan.from_spec(plan.to_spec()).to_spec() == plan.to_spec()
    first = plan.faults[0]
    assert (first.kind, first.shard, first.at) == ("shard_crash", 0, 2)
    assert plan.faults[2].seconds == 1.5


@pytest.mark.parametrize("bad", [
    "", "seed=5", "unknown_kind:at=1", "shard_crash:at=0",
    "shard_crash:shard=-1", "shard_crash:at", "shard_crash:nope=1",
    "shard_crash:at=soon", "seed=pi;shard_crash",
])
def test_malformed_specs_are_configuration_errors(bad):
    with pytest.raises(ConfigurationError):
        FaultPlan.from_spec(bad)


def test_fault_matching_semantics():
    targeted = Fault("shard_crash", shard=1, incarnation=1)
    assert targeted.matches(shard=1, incarnation=1)
    assert not targeted.matches(shard=0, incarnation=1)
    assert not targeted.matches(shard=1, incarnation=0)
    untargeted = Fault("shard_crash")
    assert untargeted.matches(shard=0) and untargeted.matches(shard=7)
    assert not untargeted.matches(shard=0, incarnation=2)


def test_monitor_fires_each_fault_exactly_once():
    plan = FaultPlan.from_spec("shard_crash:shard=0,at=2;shard_crash:shard=0,at=4")
    monitor = plan.monitor("shard_crash", shard=0)
    fired = [monitor.tick() for _ in range(6)]
    assert [fault.at if fault else None for fault in fired] == \
        [None, 2, None, 4, None, None]
    assert not monitor
    assert not ChaosMonitor(()), "an empty monitor is falsy (fast path)"


def test_active_plan_reads_and_caches_the_env(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    assert chaos.active_plan() is None
    monkeypatch.setenv(chaos.CHAOS_ENV, "shard_crash:shard=0;seed=3")
    plan = chaos.active_plan()
    assert plan.seed == 3
    assert chaos.active_plan() is plan, "parsed plans are cached by spec"


def test_worker_incarnation_env(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_INCARNATION_ENV, raising=False)
    assert chaos.worker_incarnation() == 0
    monkeypatch.setenv(chaos.CHAOS_INCARNATION_ENV, "2")
    assert chaos.worker_incarnation() == 2
    monkeypatch.setenv(chaos.CHAOS_INCARNATION_ENV, "garbage")
    assert chaos.worker_incarnation() == 0


def test_log_event_appends_json_lines(tmp_path, monkeypatch):
    log = tmp_path / "chaos.jsonl"
    monkeypatch.setenv(chaos.CHAOS_LOG_ENV, str(log))
    chaos.log_event("unit_test", detail=7)
    chaos.log_event("unit_test_two")
    records = [json.loads(line) for line in log.read_text().splitlines()]
    assert [r["event"] for r in records] == ["unit_test", "unit_test_two"]
    assert records[0]["detail"] == 7 and records[0]["pid"] == os.getpid()
    monkeypatch.delenv(chaos.CHAOS_LOG_ENV)
    chaos.log_event("not_written")  # silently skipped without the env


# ---------------------------------------------------------------------------
# Shard supervision: restart-replay bit-identity (the tentpole oracle).
# ---------------------------------------------------------------------------
def test_two_injected_shard_crashes_reproduce_the_golden_payload(
        catalog, monkeypatch, tmp_path):
    """Kill BOTH shard processes of the 2-shard golden run mid-stream; the
    supervisor restart-replays each one and the merged payload is
    byte-identical to the crash-free single-process golden fixture."""
    log = tmp_path / "chaos.jsonl"
    monkeypatch.setenv(chaos.CHAOS_ENV,
                       "shard_crash:shard=0,at=2;shard_crash:shard=1,at=1")
    monkeypatch.setenv(chaos.CHAOS_LOG_ENV, str(log))
    scenario = get_scenario("multi_region_hetero")
    run = ShardedFleetRun(scenario, RandomStreams(seed=5), catalog=catalog,
                          shards=2)
    payload = run.run()
    assert normalized(payload) == json.loads(FIXTURE.read_text())
    assert len(run.restarts) == 2
    assert sorted(record["shard"] for record in run.restarts) == [0, 1]
    assert all(record["exitcode"] == 37 for record in run.restarts), \
        "chaos kills die with the distinctive exit code"
    events = [json.loads(line)["event"] for line in log.read_text().splitlines()]
    assert events.count("injected_shard_crash") == 2
    assert events.count("shard_restart") == 2


def test_late_crash_replays_the_grant_log_mid_stream(catalog, monkeypatch):
    """A shard killed at its *third* draw request has two grants in its
    log: the respawn replays both before drawing live, and the storm
    payload matches the single-process run exactly."""
    monkeypatch.setenv(chaos.CHAOS_ENV, "shard_crash:shard=0,at=3")
    scenario = four_region_storm()
    single = run_fleet(scenario, RandomStreams(seed=3), catalog=catalog)
    run = ShardedFleetRun(scenario, RandomStreams(seed=3), catalog=catalog,
                          shards=2)
    payload = run.run()
    assert normalized(payload) == normalized(single)
    assert len(run.restarts) == 1
    assert run.restarts[0]["grants_logged"] >= 2


def test_dropped_grant_wedges_then_heartbeat_restart_recovers(
        catalog, monkeypatch):
    """The parent consumes the revocation stream for a grant but never
    sends the reply; the shard wedges silently, the heartbeat supervisor
    terminates and restarts it, and the replay re-delivers the very grant
    that was dropped — payload identical to the clean run."""
    monkeypatch.setenv(chaos.CHAOS_ENV, "drop_grant:shard=0,at=1")
    scenario = four_region_storm()
    single = run_fleet(scenario, RandomStreams(seed=3), catalog=catalog)
    run = ShardedFleetRun(scenario, RandomStreams(seed=3), catalog=catalog,
                          shards=2, heartbeat_seconds=0.5)
    payload = run.run()
    assert normalized(payload) == normalized(single)
    assert len(run.restarts) == 1
    assert "heartbeat deadline" in run.restarts[0]["reason"]
    assert run.restarts[0]["grants_logged"] >= 1


def test_chaos_cli_flag_is_scoped_and_validates(tmp_path, monkeypatch):
    from repro.scenarios.cli import main

    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    clean_out = tmp_path / "clean.json"
    chaos_out = tmp_path / "chaos.json"
    assert main(["run", "multi_region_hetero", "--replicates", "1",
                 "--seed", "5", "--shards", "1",
                 "--json", str(clean_out)]) == 0
    assert main(["run", "multi_region_hetero", "--replicates", "1",
                 "--seed", "5", "--shards", "2",
                 "--chaos", "shard_crash:shard=1,at=1",
                 "--json", str(chaos_out)]) == 0
    assert chaos.CHAOS_ENV not in os.environ, "--chaos must not leak"
    assert json.loads(chaos_out.read_text())["fleets"] == \
        json.loads(clean_out.read_text())["fleets"]
    assert main(["run", "multi_region_hetero", "--chaos", "bogus"]) == 1


# ---------------------------------------------------------------------------
# Sweep-cell retry under worker kills.
# ---------------------------------------------------------------------------
def _chaos_probe_cell(cell, streams, context):
    """Cheap deterministic cell (module-level so the pool can pickle it)."""
    return {"value": cell.params["x"] * 2,
            "noise": float(streams.get("noise").normal())}


def test_killed_sweep_workers_retry_to_identical_payloads(monkeypatch):
    spec = SweepSpec("chaos_probe", axes={"x": [1, 2, 3, 4]})
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    clean = SweepRunner(workers=2, seed=5).run(spec, _chaos_probe_cell)
    monkeypatch.setenv(chaos.CHAOS_ENV, "sweep_kill:cell=1;sweep_kill:cell=3")
    retried = SweepRunner(workers=2, seed=5).run(spec, _chaos_probe_cell)
    assert [r.payload for r in retried.results] == \
        [r.payload for r in clean.results]
    assert chaos.CHAOS_INCARNATION_ENV not in os.environ


def test_sweep_retry_budget_exhaustion_names_a_cell(monkeypatch):
    spec = SweepSpec("chaos_probe", axes={"x": [1, 2]})
    monkeypatch.setenv(chaos.CHAOS_ENV, ";".join(
        f"sweep_kill:cell=0,incarnation={i}" for i in range(4)))
    runner = SweepRunner(workers=2, seed=5, max_retries=1)
    with pytest.raises(SweepExecutionError, match="cell #0"):
        runner.run(spec, _chaos_probe_cell)


def test_sweep_retry_env_knob_and_validation(monkeypatch):
    from repro.sweeps.runner import _max_retries_default

    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "5")
    assert _max_retries_default() == 5
    assert SweepRunner(workers=2).max_retries == 5
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "-2")
    with pytest.raises(ConfigurationError):
        _max_retries_default()
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "many")
    with pytest.raises(ConfigurationError):
        _max_retries_default()
    monkeypatch.delenv("REPRO_SWEEP_RETRIES")
    with pytest.raises(ConfigurationError):
        SweepRunner(workers=2, max_retries=-1)


# ---------------------------------------------------------------------------
# Atomic telemetry export.
# ---------------------------------------------------------------------------
def _fill_spool(spool_dir):
    os.makedirs(spool_dir, exist_ok=True)
    with TelemetrySpool(TelemetryConfig(spool_dir=str(spool_dir),
                                        chunk_rows=2)) as spool:
        job = spool.job(0, "job-a", "resnet_15", 0.589)
        job.register_worker("worker-0", "k80", "us-east1")
        sink = job.step_sink()
        for index in range(6):
            sink.append_row("worker-0", float(index), index + 0.5,
                            10, 10 * (index + 1), 10 * (index + 1))


def test_truncated_export_never_touches_the_artifact_path(
        tmp_path, monkeypatch):
    spool_dir = tmp_path / "spool"
    out_path = tmp_path / "telemetry.npz"
    _fill_spool(spool_dir)
    # Seed a previous good artifact, then fail the re-export mid-pack.
    write_npz(str(spool_dir), str(out_path), {"scenario": "unit"})
    good_bytes = out_path.read_bytes()
    monkeypatch.setenv(chaos.CHAOS_ENV, "npz_truncate:at=2")
    with pytest.raises(DataError, match="truncated"):
        write_npz(str(spool_dir), str(out_path), {"scenario": "unit"})
    assert out_path.read_bytes() == good_bytes, \
        "a failed export must leave the previous artifact intact"
    assert not list(tmp_path.glob("*.tmp")), "tmp siblings are cleaned up"
    monkeypatch.delenv(chaos.CHAOS_ENV)
    write_npz(str(spool_dir), str(out_path), {"scenario": "unit"})
    assert out_path.read_bytes() == good_bytes, "exports are deterministic"


def test_export_killed_mid_write_leaves_no_truncated_npz(tmp_path):
    """Hard-kill (os._exit inside the zip loop) a real export subprocess;
    the artifact path must not exist afterwards — the crash died inside
    the .tmp sibling."""
    spool_dir = tmp_path / "spool"
    out_path = tmp_path / "telemetry.npz"
    _fill_spool(spool_dir)
    script = f"""
import os, sys
sys.path.insert(0, {repr(str(pathlib.Path(__file__).parent))})
from repro.telemetry import writer

original = writer._add_member
members = []

def dying_add_member(archive, arcname, payload):
    original(archive, arcname, payload)
    members.append(arcname)
    if len(members) == 2:
        os._exit(9)  # SIGKILL-grade death mid-archive

writer._add_member = dying_add_member
writer.write_npz({repr(str(spool_dir))}, {repr(str(out_path))}, {{}})
"""
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(sys.path[:1] + [
                   str(pathlib.Path(__file__).parents[1] / "src")]))
    result = subprocess.run([sys.executable, "-c", script], env=env,
                            capture_output=True, timeout=120)
    assert result.returncode == 9, result.stderr.decode()
    assert not out_path.exists(), \
        "a killed export must never leave bytes at the artifact path"
    # The interrupted .tmp sibling (if any) is ignorable debris, never
    # the artifact; a later clean export fully replaces it.
    write_npz(str(spool_dir), str(out_path), {})
    from repro.telemetry.reader import TelemetryReader
    with TelemetryReader(str(out_path)) as reader:
        assert reader.ranks == [0]
