"""Integration tests: the paper's headline claims, end to end.

Each test composes several subsystems (measurement campaigns, regression
models, the training simulator, the estimators) the way the paper does and
checks the corresponding claim qualitatively.
"""

import pytest

from repro.cloud.revocation import RevocationModel
from repro.cmdare.controller import ControllerConfig
from repro.cmdare.experiment import run_training_experiment
from repro.modeling.checkpoint_predictor import TABLE4_MODEL_SPECS, CheckpointTimePredictor
from repro.modeling.revocation_estimator import RevocationEstimator
from repro.modeling.speed_predictor import (
    ClusterSpeedPredictor,
    StepTimeModelSpec,
    StepTimePredictor,
    evaluate_table2_models,
)
from repro.modeling.training_time import TrainingTimeEstimator
from repro.modeling.cost import ClusterCostModel
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob, measurement_job


def test_claim_regression_predicts_step_time_within_reasonable_mape(speed_dataset):
    """Section III-B: data-driven prediction achieves ~9% MAPE."""
    rows = {row.spec.name: row for row in
            evaluate_table2_models(speed_dataset.measurements(), seed=0)}
    best_gpu_specific = min(rows[name].test_mape for name in rows
                            if "K80" in name or "P100" in name)
    assert best_gpu_specific < 15.0
    # GPU-specific models are competitive with (and usually better than) the
    # GPU-agnostic multivariate model; exact orderings depend on the random
    # train/test split, so allow a factor of two.
    gpu_specific_maes = [rows[name].test_mae for name in rows if "K80" in name]
    assert min(gpu_specific_maes) <= rows["Multivariate, GPU-agnostic"].test_mae * 2.0


def test_claim_heterogeneous_cluster_speed_is_sum_of_workers(speed_dataset, catalog):
    """Section VI-A: cluster speed ~ sum of individual worker speeds."""
    measurements = speed_dataset.measurements()
    per_gpu = {
        gpu: StepTimePredictor(StepTimeModelSpec(f"Univariate, {gpu}", "cm", "linear",
                                                 gpu)).fit(measurements)
        for gpu in ("k80", "p100")
    }
    predictor = ClusterSpeedPredictor(per_gpu_predictors=per_gpu)
    profile = catalog.profile("resnet_32")
    predicted = predictor.predict_cluster_speed(profile.gflops, ["k80", "k80", "p100"])

    cluster = ClusterSpec(workers=tuple(
        __import__("repro.training.cluster", fromlist=["WorkerSpec"]).WorkerSpec(g)
        for g in ("k80", "k80", "p100")))
    result = run_training_experiment(cluster, measurement_job(profile, steps=2000),
                                     seed=5, with_controller=False)
    assert result.cluster_speed == pytest.approx(predicted, rel=0.15)


def test_claim_end_to_end_training_time_prediction_is_accurate(
        speed_dataset, checkpoint_dataset, catalog):
    """Section VI-A: Eq. (4) predicts a ResNet-32 run within a few percent."""
    measurements = speed_dataset.measurements()
    per_gpu = {"k80": StepTimePredictor(
        StepTimeModelSpec("Univariate, K80", "cm", "linear", "k80")).fit(measurements)}
    cluster_predictor = ClusterSpeedPredictor(per_gpu_predictors=per_gpu)
    checkpoint_predictor = CheckpointTimePredictor(TABLE4_MODEL_SPECS[0]).fit(
        checkpoint_dataset.measurements())
    estimator = TrainingTimeEstimator(cluster_predictor, checkpoint_predictor,
                                      revocation_estimator=None)

    profile = catalog.profile("resnet_32")
    # A scaled-down version of the paper's 64K-step example (Ic = 1/16 of Nw).
    job = TrainingJob(profile=profile, total_steps=8000,
                      checkpoint_interval_steps=500)
    cluster = ClusterSpec.from_counts(k80=2, transient=False)
    prediction = estimator.predict(job, cluster)
    measured = run_training_experiment(cluster, job, seed=2, with_controller=False)
    error = estimator.prediction_error(prediction.total_seconds,
                                       measured.duration_seconds)
    assert error < 0.08


def test_claim_bottleneck_detection_and_mitigation_improves_speed(catalog):
    """Section VI-B: detecting the PS bottleneck and adding a PS helps."""
    profile = catalog.profile("resnet_32")
    cluster = ClusterSpec.from_counts(p100=8)
    job = measurement_job(profile, steps=8000)
    plain = run_training_experiment(cluster, job, seed=4, with_controller=False)
    mitigated = run_training_experiment(
        cluster, job, seed=4,
        controller_config=ControllerConfig(auto_mitigate_bottleneck=True,
                                           poll_interval_seconds=10.0))
    assert mitigated.controller is not None
    assert mitigated.controller.summary()["num_bottleneck_flags"] >= 1
    assert mitigated.session.ps_group.count == 2
    assert mitigated.cluster_speed > plain.cluster_speed * 1.1


def test_claim_transient_training_is_cheaper_despite_revocations(
        speed_dataset, checkpoint_dataset, catalog):
    """The economic motivation: transient clusters cost less end to end."""
    measurements = speed_dataset.measurements()
    per_gpu = {"p100": StepTimePredictor(
        StepTimeModelSpec("Univariate, P100", "cm", "linear", "p100")).fit(measurements)}
    estimator = TrainingTimeEstimator(
        ClusterSpeedPredictor(per_gpu_predictors=per_gpu),
        CheckpointTimePredictor(TABLE4_MODEL_SPECS[0]).fit(checkpoint_dataset.measurements()),
        RevocationEstimator(fallback_model=RevocationModel()))
    profile = catalog.profile("resnet_32")
    job = TrainingJob(profile=profile, total_steps=64_000, checkpoint_interval_steps=4000)
    cluster = ClusterSpec.from_counts(p100=4, region_name="us-east1")
    prediction = estimator.predict(job, cluster)
    estimate = ClusterCostModel().estimate(cluster, prediction)
    assert estimate.savings_fraction > 0.4
    assert prediction.expected_revocations > 0


def test_claim_training_with_revocation_and_replacement_completes(catalog):
    """Asynchronous training survives a revocation and finishes the workload."""
    profile = catalog.profile("resnet_15")
    cluster = ClusterSpec.from_counts(k80=2, region_name="europe-west1")
    job = TrainingJob(profile=profile, total_steps=12_000, checkpoint_interval_steps=4000)
    result = run_training_experiment(cluster, job, seed=23, with_provider=True)
    assert result.trace.total_steps >= 12_000
    # If the provider revoked any worker, the controller replaced it.
    assert result.trace.num_replacements == result.trace.num_revocations
    assert result.total_cost_usd > 0
