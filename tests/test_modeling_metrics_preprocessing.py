"""Tests for metrics and preprocessing (scalers, PCA)."""

import numpy as np
import pytest

from repro.errors import DataError, NotFittedError
from repro.modeling.metrics import (
    coefficient_of_variation,
    mean_absolute_error,
    mean_absolute_percentage_error,
    root_mean_squared_error,
)
from repro.modeling.preprocessing import PCA, MinMaxScaler, StandardScaler


def test_mae_basic():
    assert mean_absolute_error([1, 2, 3], [1, 2, 3]) == 0.0
    assert mean_absolute_error([1, 2, 3], [2, 3, 4]) == 1.0


def test_mape_basic():
    assert mean_absolute_percentage_error([2.0, 4.0], [1.0, 2.0]) == pytest.approx(50.0)
    with pytest.raises(DataError):
        mean_absolute_percentage_error([0.0, 1.0], [1.0, 1.0])


def test_rmse_penalizes_large_errors_more_than_mae():
    y_true = [0.0, 0.0, 0.0, 0.0]
    y_pred = [0.0, 0.0, 0.0, 4.0]
    assert root_mean_squared_error(y_true, y_pred) > mean_absolute_error(y_true, y_pred)


def test_metric_shape_validation():
    with pytest.raises(DataError):
        mean_absolute_error([1, 2], [1])
    with pytest.raises(DataError):
        mean_absolute_error([], [])


def test_coefficient_of_variation():
    assert coefficient_of_variation([10.0, 10.0, 10.0]) == 0.0
    with pytest.raises(DataError):
        coefficient_of_variation([1.0])


def test_minmax_scaler_maps_to_unit_interval():
    data = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
    scaled = MinMaxScaler().fit_transform(data)
    assert scaled.min() == pytest.approx(0.0)
    assert scaled.max() == pytest.approx(1.0)
    assert scaled[1, 0] == pytest.approx(0.5)


def test_minmax_scaler_inverse_roundtrip():
    data = np.array([[0.5], [1.5], [4.0]])
    scaler = MinMaxScaler().fit(data)
    assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)


def test_minmax_scaler_handles_constant_feature():
    data = np.array([[5.0], [5.0], [5.0]])
    scaled = MinMaxScaler().fit_transform(data)
    assert np.allclose(scaled, 0.0)


def test_minmax_scaler_extrapolates_outside_range():
    scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
    assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)


def test_scaler_not_fitted_errors():
    with pytest.raises(NotFittedError):
        MinMaxScaler().transform([[1.0]])
    with pytest.raises(NotFittedError):
        StandardScaler().transform([[1.0]])
    with pytest.raises(NotFittedError):
        PCA().transform([[1.0, 2.0, 3.0]])


def test_scaler_feature_count_mismatch():
    scaler = MinMaxScaler().fit(np.ones((3, 2)))
    with pytest.raises(DataError):
        scaler.transform(np.ones((3, 3)))


def test_standard_scaler_zero_mean_unit_variance():
    data = np.array([[1.0], [2.0], [3.0], [4.0]])
    scaled = StandardScaler().fit_transform(data)
    assert scaled.mean() == pytest.approx(0.0, abs=1e-12)
    assert scaled.std() == pytest.approx(1.0, rel=1e-6)


def test_pca_recovers_dominant_direction():
    rng = np.random.default_rng(0)
    t = rng.normal(size=200)
    data = np.column_stack([t, 2 * t + 0.01 * rng.normal(size=200),
                            -t + 0.01 * rng.normal(size=200)])
    pca = PCA(n_components=2).fit(data)
    assert pca.explained_variance_ratio_[0] > 0.95
    projected = pca.transform(data)
    assert projected.shape == (200, 2)


def test_pca_validation():
    with pytest.raises(DataError):
        PCA(n_components=0)
    with pytest.raises(DataError):
        PCA(n_components=3).fit(np.ones((5, 2)))
    with pytest.raises(DataError):
        PCA(n_components=1).fit(np.ones((1, 2)))
