"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import empirical_cdf
from repro.modeling.linear import LinearRegression
from repro.modeling.metrics import mean_absolute_error, root_mean_squared_error
from repro.modeling.preprocessing import MinMaxScaler, PCA
from repro.perf.ps_capacity import PSCapacityModel, effective_cluster_speed
from repro.perf.step_time import StepTimeModel
from repro.scenarios.pool import TransientPool
from repro.simulation.engine import Simulator
from repro.training.cluster import ClusterSpec

# Keep hypothesis fast and deterministic inside CI.
COMMON_SETTINGS = settings(max_examples=50, deadline=None)


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30),
       st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30))
def test_mae_is_nonnegative_and_bounded_by_rmse(a, b):
    size = min(len(a), len(b))
    y_true, y_pred = a[:size], b[:size]
    mae = mean_absolute_error(y_true, y_pred)
    rmse = root_mean_squared_error(y_true, y_pred)
    assert mae >= 0.0
    assert mae <= rmse + 1e-9


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=40))
def test_minmax_scaler_output_in_unit_interval(values):
    data = np.array(values).reshape(-1, 1)
    scaled = MinMaxScaler().fit_transform(data)
    assert scaled.min() >= -1e-9
    assert scaled.max() <= 1.0 + 1e-9


@COMMON_SETTINGS
@given(st.integers(min_value=3, max_value=30), st.integers(min_value=2, max_value=4))
def test_pca_projection_has_requested_shape(n_samples, n_features):
    rng = np.random.default_rng(n_samples * 10 + n_features)
    data = rng.normal(size=(n_samples, n_features))
    pca = PCA(n_components=min(2, n_features))
    projected = pca.fit_transform(data)
    assert projected.shape == (n_samples, min(2, n_features))
    # Components are orthonormal.
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)


@COMMON_SETTINGS
@given(st.floats(min_value=0.01, max_value=1e4), st.floats(min_value=0.01, max_value=1e4))
def test_effective_cluster_speed_bounded_by_both_terms(demand, capacity):
    speed = effective_cluster_speed(demand, capacity)
    assert speed <= min(demand, capacity) + 1e-9
    assert speed >= 0.5 * min(demand, capacity)


@COMMON_SETTINGS
@given(st.floats(min_value=0.1, max_value=500.0), st.integers(min_value=1, max_value=4))
def test_ps_capacity_monotone_in_ps_count(gradient_mb, n_ps):
    model = PSCapacityModel()
    gradient_bytes = gradient_mb * 1024 * 1024
    smaller = model.capacity(gradient_bytes, n_ps)
    larger = model.capacity(gradient_bytes, n_ps + 1)
    assert larger > smaller


@COMMON_SETTINGS
@given(st.floats(min_value=0.05, max_value=30.0),
       st.sampled_from(["k80", "p100", "v100"]))
def test_step_time_positive_and_speed_consistent(gflops, gpu):
    model = StepTimeModel()
    step_time = model.mean_step_time(gflops, gpu)
    assert step_time > 0
    assert model.mean_speed(gflops, gpu) * step_time == np.float64(1.0) or np.isclose(
        model.mean_speed(gflops, gpu) * step_time, 1.0, rtol=1e-9)


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.1, max_value=24.0), min_size=1, max_size=50),
       st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=20))
def test_empirical_cdf_is_monotone_and_bounded(values, grid):
    ordered_grid = sorted(grid)
    cdf = empirical_cdf(values, ordered_grid, population=len(values) + 5)
    assert all(0.0 <= v <= 1.0 for v in cdf)
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=5))
def test_cluster_counts_round_trip(k80, p100, v100):
    if k80 + p100 + v100 == 0:
        k80 = 1
    cluster = ClusterSpec.from_counts(k80=k80, p100=p100, v100=v100,
                                      region_name="us-central1")
    assert cluster.counts() == (k80, p100, v100)
    assert cluster.num_workers == k80 + p100 + v100
    assert cluster.is_heterogeneous == (len([c for c in (k80, p100, v100) if c]) > 1)


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=20))
def test_simulator_fires_events_in_sorted_order(delays):
    simulator = Simulator()
    fired = []
    for delay in delays:
        simulator.schedule(delay, lambda s, d=delay: fired.append(s.now))
    simulator.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@COMMON_SETTINGS
@given(st.floats(min_value=-5.0, max_value=5.0), st.floats(min_value=-5.0, max_value=5.0),
       st.integers(min_value=5, max_value=40))
def test_linear_regression_recovers_exact_line(slope, intercept, n):
    x = np.linspace(0.0, 1.0, n).reshape(-1, 1)
    y = slope * x.ravel() + intercept
    model = LinearRegression().fit(x, y)
    assert np.isclose(model.coef_[0], slope, atol=1e-6)
    assert np.isclose(model.intercept_, intercept, atol=1e-6)


# ---------------------------------------------------------------------------
# TransientPool invariants under random interleavings.
# ---------------------------------------------------------------------------
#: Pool operations the interpreter below understands.  Illegal draws (e.g.
#: releasing with nothing in use) are skipped, so every generated program
#: is a legal interleaving of acquire / revoke / release / request /
#: cancel / time-advance against one (gpu, region) cell.
_POOL_OPS = 6


@COMMON_SETTINGS
@given(capacity=st.integers(min_value=1, max_value=4),
       warm_capacity=st.integers(min_value=0, max_value=4),
       warm_seconds=st.sampled_from([0.0, 40.0]),
       ops=st.lists(st.tuples(st.integers(0, _POOL_OPS - 1),
                              st.integers(0, 99)),
                    max_size=40))
def test_transient_pool_invariants_under_random_interleavings(
        capacity, warm_capacity, warm_seconds, ops):
    """Conservation, FIFO grants, and single-shot reclaim/cooldown timers
    hold for every random acquire/revoke/release/warm-reuse interleaving."""
    sim = Simulator()
    key = ("k80", "us-west1")
    pool = TransientPool(sim, {key: capacity}, reclaim_seconds=25.0,
                         warm_seconds=warm_seconds,
                         warm_capacity=warm_capacity)
    state = pool._states[key]
    enqueued = []       # queued-request labels, in enqueue order
    granted_log = []    # (label, warm) in grant order (sync and queued)
    outstanding = []    # (label, ticket) of not-yet-resolved queued requests
    labels = iter(f"w{i}" for i in range(1000))

    def check():
        assert state.in_use >= 0 and state.reclaimed >= 0
        assert state.warm >= 0 and state.available >= 0
        # Conservation: every slot is in exactly one bucket...
        assert (state.in_use + state.available + state.warm
                + state.reclaimed) == capacity
        # ...which implies the headline invariant from the issue:
        assert state.in_use + state.available + state.warm <= capacity
        assert state.warm <= warm_capacity
        if not pool.warm_enabled:
            assert state.warm == 0
        # Waiters exist only while nothing is acquirable.
        if pool.pending_waiters(*key) > 0:
            assert pool.acquirable(*key) == 0

    for op, arg in ops:
        if op == 0 and pool.acquirable(*key) > 0:
            pool.acquire(*key)
        elif op == 1 and state.in_use > 0:
            pool.revoke(*key)
        elif op == 2 and state.in_use > 0:
            pool.release(*key)
        elif op == 3:
            label = next(labels)
            ticket = pool.request_replacement(
                *key, lambda warm, lab=label: granted_log.append((lab, warm)),
                queue=arg % 2 == 0, label=label)
            if ticket.outcome == "queued":
                enqueued.append(label)
                outstanding.append((label, ticket))
        elif op == 4:
            sim.run(until=sim.now + (arg % 60) + 1)
        elif op == 5 and outstanding:
            _label, ticket = outstanding.pop(arg % len(outstanding))
            ticket.cancel()
        check()

    # Drain every pending reclaim/cooldown timer: capacity must return
    # exactly once per revocation (never resurrect twice), warm servers
    # must all cool down, and conservation must still hold.
    sim.run()
    check()
    assert state.reclaimed == 0
    assert state.warm == 0
    assert state.in_use + state.available == capacity

    # FIFO: queued requests were granted in enqueue order (cancelled and
    # still-waiting ones simply drop out of the sequence).
    queued_grants = [label for label, _warm in granted_log
                     if label in set(enqueued)]
    assert queued_grants == [label for label in enqueued
                             if label in set(queued_grants)]
    # Warm grants can only happen when the warm path is enabled.
    if not pool.warm_enabled:
        assert not any(warm for _label, warm in granted_log)
    # Counter bookkeeping adds up.
    assert pool.replacements_granted == len(granted_log)
    assert (pool.replacements_granted + pool.replacements_denied
            + pool.pending_waiters(*key) + pool.replacements_cancelled
            ) == pool.replacement_requests


# ---------------------------------------------------------------------------
# Sharded-fleet messaging invariants under random interleavings.
# ---------------------------------------------------------------------------
from repro.scenarios.shard import DeterministicMessageQueue, ShardMessage


def _shard_messages(entries):
    """Build messages from (time_idx, rank, shard) triples, numbering each
    shard's messages in its own send order — exactly how the shard driver
    assigns sequence numbers before the OS gets a say in arrival order.
    A real shard blocks on each request, so its sends carry nondecreasing
    (time, rank) keys; the per-shard sort models that."""
    times = [0.0, 1.5, 1.5, 7.25, 64.0]
    by_shard = {}
    for time_idx, rank, shard in entries:
        by_shard.setdefault(shard, []).append(
            (times[time_idx % len(times)], rank))
    messages = []
    for shard in sorted(by_shard):
        for seq, (time, rank) in enumerate(sorted(by_shard[shard])):
            messages.append(ShardMessage(time=time, rank=rank, shard=shard,
                                         seq=seq, payload=len(messages)))
    return messages


@COMMON_SETTINGS
@given(entries=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 5),
                                  st.integers(0, 3)),
                        min_size=1, max_size=30),
       shuffle_seed=st.integers(0, 2**31 - 1))
def test_message_queue_drain_order_is_independent_of_arrival_order(
        entries, shuffle_seed):
    """Pushing the same message set in any OS-like arrival order drains in
    the same (time, rank, shard, seq) sequence — the determinism the
    parent's draw service is built on."""
    messages = _shard_messages(entries)
    shuffled = list(messages)
    np.random.default_rng(shuffle_seed).shuffle(shuffled)

    canonical, scrambled = DeterministicMessageQueue(), DeterministicMessageQueue()
    for message in messages:
        canonical.push(message)
    for message in shuffled:
        scrambled.push(message)

    drained = [scrambled.pop() for _ in range(len(scrambled))]
    assert drained == [canonical.pop() for _ in range(len(canonical))]
    assert [m.key for m in drained] == sorted(m.key for m in messages)
    # Per-shard sends never reorder relative to each other.
    for shard in {m.shard for m in messages}:
        seqs = [m.seq for m in drained if m.shard == shard]
        assert seqs == sorted(seqs)


@COMMON_SETTINGS
@given(requests=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)),
                         min_size=1, max_size=20),
       capacity=st.integers(min_value=1, max_value=3),
       shuffle_seed=st.integers(0, 2**31 - 1))
def test_pool_fifo_holds_for_waiters_arriving_across_shards(
        requests, capacity, shuffle_seed):
    """Replacement waiters that reach one pool cell through the message
    queue (i.e. from several shards, in arbitrary OS arrival order) are
    enqueued — and therefore granted — in deterministic message order."""
    messages = _shard_messages((time_idx, 0, shard)
                               for time_idx, shard in requests)
    queue = DeterministicMessageQueue()
    shuffled = list(messages)
    np.random.default_rng(shuffle_seed).shuffle(shuffled)
    for message in shuffled:
        queue.push(message)

    sim = Simulator()
    key = ("k80", "us-west1")
    pool = TransientPool(sim, {key: capacity}, reclaim_seconds=5.0)
    for _ in range(capacity):
        pool.acquire(*key)
    granted = []
    expected = []
    while queue:
        message = queue.pop()
        expected.append(message.payload)
        pool.request_replacement(
            *key, lambda _warm, tag=message.payload: granted.append(tag),
            queue=True, label=f"shard-{message.shard}")
    # Revocations return capacity; every waiter must be granted in the
    # deterministic drain order, never in the shuffled arrival order.
    for _ in range(len(messages)):
        if pool.pending_waiters(*key) == 0:
            break
        pool.revoke(*key)
        sim.run()
    while pool.pending_waiters(*key) > 0:
        pool.release(*key)
        sim.run()
    assert granted == expected[:len(granted)]
    assert granted == expected
