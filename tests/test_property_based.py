"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import empirical_cdf
from repro.modeling.linear import LinearRegression
from repro.modeling.metrics import mean_absolute_error, root_mean_squared_error
from repro.modeling.preprocessing import MinMaxScaler, PCA
from repro.perf.ps_capacity import PSCapacityModel, effective_cluster_speed
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.training.cluster import ClusterSpec

# Keep hypothesis fast and deterministic inside CI.
COMMON_SETTINGS = settings(max_examples=50, deadline=None)


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30),
       st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=30))
def test_mae_is_nonnegative_and_bounded_by_rmse(a, b):
    size = min(len(a), len(b))
    y_true, y_pred = a[:size], b[:size]
    mae = mean_absolute_error(y_true, y_pred)
    rmse = root_mean_squared_error(y_true, y_pred)
    assert mae >= 0.0
    assert mae <= rmse + 1e-9


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=40))
def test_minmax_scaler_output_in_unit_interval(values):
    data = np.array(values).reshape(-1, 1)
    scaled = MinMaxScaler().fit_transform(data)
    assert scaled.min() >= -1e-9
    assert scaled.max() <= 1.0 + 1e-9


@COMMON_SETTINGS
@given(st.integers(min_value=3, max_value=30), st.integers(min_value=2, max_value=4))
def test_pca_projection_has_requested_shape(n_samples, n_features):
    rng = np.random.default_rng(n_samples * 10 + n_features)
    data = rng.normal(size=(n_samples, n_features))
    pca = PCA(n_components=min(2, n_features))
    projected = pca.fit_transform(data)
    assert projected.shape == (n_samples, min(2, n_features))
    # Components are orthonormal.
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)


@COMMON_SETTINGS
@given(st.floats(min_value=0.01, max_value=1e4), st.floats(min_value=0.01, max_value=1e4))
def test_effective_cluster_speed_bounded_by_both_terms(demand, capacity):
    speed = effective_cluster_speed(demand, capacity)
    assert speed <= min(demand, capacity) + 1e-9
    assert speed >= 0.5 * min(demand, capacity)


@COMMON_SETTINGS
@given(st.floats(min_value=0.1, max_value=500.0), st.integers(min_value=1, max_value=4))
def test_ps_capacity_monotone_in_ps_count(gradient_mb, n_ps):
    model = PSCapacityModel()
    gradient_bytes = gradient_mb * 1024 * 1024
    smaller = model.capacity(gradient_bytes, n_ps)
    larger = model.capacity(gradient_bytes, n_ps + 1)
    assert larger > smaller


@COMMON_SETTINGS
@given(st.floats(min_value=0.05, max_value=30.0),
       st.sampled_from(["k80", "p100", "v100"]))
def test_step_time_positive_and_speed_consistent(gflops, gpu):
    model = StepTimeModel()
    step_time = model.mean_step_time(gflops, gpu)
    assert step_time > 0
    assert model.mean_speed(gflops, gpu) * step_time == np.float64(1.0) or np.isclose(
        model.mean_speed(gflops, gpu) * step_time, 1.0, rtol=1e-9)


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.1, max_value=24.0), min_size=1, max_size=50),
       st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=20))
def test_empirical_cdf_is_monotone_and_bounded(values, grid):
    ordered_grid = sorted(grid)
    cdf = empirical_cdf(values, ordered_grid, population=len(values) + 5)
    assert all(0.0 <= v <= 1.0 for v in cdf)
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=5))
def test_cluster_counts_round_trip(k80, p100, v100):
    if k80 + p100 + v100 == 0:
        k80 = 1
    cluster = ClusterSpec.from_counts(k80=k80, p100=p100, v100=v100,
                                      region_name="us-central1")
    assert cluster.counts() == (k80, p100, v100)
    assert cluster.num_workers == k80 + p100 + v100
    assert cluster.is_heterogeneous == (len([c for c in (k80, p100, v100) if c]) > 1)


@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=20))
def test_simulator_fires_events_in_sorted_order(delays):
    simulator = Simulator()
    fired = []
    for delay in delays:
        simulator.schedule(delay, lambda s, d=delay: fired.append(s.now))
    simulator.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@COMMON_SETTINGS
@given(st.floats(min_value=-5.0, max_value=5.0), st.floats(min_value=-5.0, max_value=5.0),
       st.integers(min_value=5, max_value=40))
def test_linear_regression_recovers_exact_line(slope, intercept, n):
    x = np.linspace(0.0, 1.0, n).reshape(-1, 1)
    y = slope * x.ravel() + intercept
    model = LinearRegression().fit(x, y)
    assert np.isclose(model.coef_[0], slope, atol=1e-6)
    assert np.isclose(model.intercept_, intercept, atol=1e-6)
