"""Tests for the checkpoint and startup measurement campaigns."""

import pytest

from repro.measurement.checkpoint_campaign import run_checkpoint_campaign
from repro.measurement.startup_campaign import (
    run_replacement_startup_campaign,
    run_startup_breakdown_campaign,
)


def test_checkpoint_campaign_covers_all_models(checkpoint_dataset, catalog):
    assert len(checkpoint_dataset.samples) == len(catalog)
    assert len(checkpoint_dataset.measurements()) == 5 * len(catalog)


def test_checkpoint_time_correlates_with_size(checkpoint_dataset):
    points = sorted(checkpoint_dataset.scatter())
    sizes = [size for size, _t, _c in points]
    times = [time for _s, time, _c in points]
    assert times == sorted(times)
    assert sizes[0] < 20 < sizes[-1]


def test_checkpoint_cov_is_low(checkpoint_dataset):
    for sample in checkpoint_dataset.samples:
        assert sample.cov < 0.12


def test_resnet32_checkpoint_near_paper_value(checkpoint_dataset):
    sample = checkpoint_dataset.sample("resnet_32")
    assert sample.mean_seconds == pytest.approx(3.84, rel=0.1)
    with pytest.raises(KeyError):
        checkpoint_dataset.sample("unknown-model")


def test_sequential_check_difference_matches_checkpoint_time(catalog):
    result = run_checkpoint_campaign(model_names=["resnet_32"], seed=5, catalog=catalog,
                                     with_sequential_check=True)
    with_ckpt, without_ckpt, difference, checkpoint_time = result.sequential_check
    assert with_ckpt > without_ckpt
    assert difference == pytest.approx(checkpoint_time, rel=0.25)


def test_startup_breakdown_matches_fig6(catalog):
    result = run_startup_breakdown_campaign(samples_per_cell=30, seed=4)
    for region in ("us-east1", "us-west1"):
        for gpu in ("k80", "p100"):
            transient = result.cell(region, gpu, True)
            on_demand = result.cell(region, gpu, False)
            assert transient.total_mean < 100.0
            assert 0 < result.transient_slowdown(region, gpu) < 35.0
            assert transient.total_mean == pytest.approx(
                transient.provisioning_mean + transient.staging_mean
                + transient.booting_mean)
            assert on_demand.samples == 30
    # Transient P100 startup is slower than transient K80 (about 8.7%).
    k80 = result.cell("us-east1", "k80", True).total_mean
    p100 = result.cell("us-east1", "p100", True).total_mean
    assert 1.0 < p100 / k80 < 1.2
    with pytest.raises(KeyError):
        result.cell("us-east1", "v100", True)


def test_replacement_startup_matches_fig7():
    result = run_replacement_startup_campaign(samples_per_cell=60, seed=4)
    for gpu in ("k80", "p100", "v100"):
        assert abs(result.immediate_penalty(gpu)) < 6.0
        immediate = result.cell(gpu, True)
        delayed = result.cell(gpu, False)
        assert immediate.cov > 2.0 * delayed.cov
    table = result.as_table()
    assert set(table) == {"k80", "p100", "v100"}
    means = [table[gpu]["immediate"][0] for gpu in table]
    assert max(means) - min(means) < 6.0
