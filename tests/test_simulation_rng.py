"""Tests for the named random streams."""

import numpy as np

from repro.simulation.rng import RandomStreams


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(seed=42).get("step_time").normal(size=5)
    b = RandomStreams(seed=42).get("step_time").normal(size=5)
    assert np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("step_time").normal(size=5)
    b = RandomStreams(seed=2).get("step_time").normal(size=5)
    assert not np.allclose(a, b)


def test_streams_are_independent_of_each_other():
    streams = RandomStreams(seed=7)
    # Draw heavily from one stream, then check another is unaffected.
    streams.get("noise").normal(size=1000)
    after_draws = streams.get("revocation").normal(size=3)
    fresh = RandomStreams(seed=7).get("revocation").normal(size=3)
    assert np.allclose(after_draws, fresh)


def test_get_returns_cached_generator():
    streams = RandomStreams(seed=0)
    assert streams.get("x") is streams.get("x")


def test_fresh_restarts_stream_state():
    streams = RandomStreams(seed=0)
    first = streams.fresh("x").normal(size=3)
    streams.get("x").normal(size=10)
    again = streams.fresh("x").normal(size=3)
    assert np.allclose(first, again)


def test_reset_single_stream():
    streams = RandomStreams(seed=0)
    first = streams.get("x").normal(size=3)
    streams.reset("x")
    again = streams.get("x").normal(size=3)
    assert np.allclose(first, again)


def test_reset_all_streams():
    streams = RandomStreams(seed=0)
    first_x = streams.get("x").normal()
    first_y = streams.get("y").normal()
    streams.reset()
    assert streams.get("x").normal() == first_x
    assert streams.get("y").normal() == first_y


def test_spawn_creates_deterministic_child():
    a = RandomStreams(seed=3).spawn("trial-1").get("s").normal(size=4)
    b = RandomStreams(seed=3).spawn("trial-1").get("s").normal(size=4)
    c = RandomStreams(seed=3).spawn("trial-2").get("s").normal(size=4)
    assert np.allclose(a, b)
    assert not np.allclose(a, c)
