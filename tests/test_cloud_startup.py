"""Tests for the startup-time model (Fig. 6 / Fig. 7 calibration)."""

import numpy as np
import pytest

from repro.cloud.startup import StartupStages, StartupTimeModel


@pytest.fixture()
def model():
    return StartupTimeModel(rng=np.random.default_rng(0))


def test_stages_total_is_sum():
    stages = StartupStages(provisioning=10.0, staging=20.0, booting=30.0)
    assert stages.total == pytest.approx(60.0)
    assert stages.as_dict() == {"provisioning": 10.0, "staging": 20.0, "booting": 30.0}


def test_transient_startup_under_100_seconds(model):
    for gpu in ("k80", "p100", "v100"):
        mean = model.stage_means(gpu, transient=True).total
        assert mean < 100.0


def test_transient_slower_than_on_demand(model):
    for gpu in ("k80", "p100"):
        transient = model.stage_means(gpu, transient=True).total
        on_demand = model.stage_means(gpu, transient=False).total
        assert 5.0 < transient - on_demand < 30.0


def test_p100_transient_slower_than_k80(model):
    k80 = model.stage_means("k80", transient=True).total
    p100 = model.stage_means("p100", transient=True).total
    # The paper reports ~8.7% slower startup for transient P100 servers.
    assert 1.03 < p100 / k80 < 1.15


def test_samples_are_positive_and_near_means(model):
    samples = [model.sample("k80", True, "us-east1").total for _ in range(200)]
    assert all(s > 0 for s in samples)
    assert abs(np.mean(samples) - model.stage_means("k80", True).total) < 5.0


def test_region_affects_staging(model):
    east = model.stage_means("k80", True, "us-east1").staging
    asia = model.stage_means("v100", True, "asia-east1").staging
    assert asia != east


def test_replacement_immediate_vs_delayed_close_means(model):
    for gpu in ("k80", "p100", "v100"):
        immediate = model.replacement_mean(gpu, immediate=True)
        delayed = model.replacement_mean(gpu, immediate=False)
        assert abs(immediate - delayed) <= 4.0


def test_replacement_immediate_more_variable(model):
    immediate = [model.sample_replacement("k80", True) for _ in range(300)]
    delayed = [model.sample_replacement("k80", False) for _ in range(300)]
    cov_immediate = np.std(immediate) / np.mean(immediate)
    cov_delayed = np.std(delayed) / np.mean(delayed)
    assert cov_immediate > 2.0 * cov_delayed


def test_replacement_gpu_types_within_a_few_seconds(model):
    means = [model.replacement_mean(gpu, immediate=True) for gpu in ("k80", "p100", "v100")]
    assert max(means) - min(means) <= 4.0
