"""Tests for dataset persistence (CSV/JSON save and load)."""

import pytest

from repro.errors import DataError
from repro.measurement.datasets import (
    load_checkpoint_measurements,
    load_profiler,
    load_revocation_records,
    load_speed_measurements,
    save_checkpoint_measurements,
    save_revocation_records,
    save_speed_measurements,
)
from repro.measurement.revocation_campaign import run_revocation_campaign


def test_speed_measurements_round_trip(tmp_path, speed_dataset):
    measurements = speed_dataset.measurements()
    path = save_speed_measurements(measurements, tmp_path / "speed.csv")
    assert path.exists()
    loaded = load_speed_measurements(path)
    assert len(loaded) == len(measurements)
    assert loaded[0].model_name == measurements[0].model_name
    assert loaded[0].step_time == pytest.approx(measurements[0].step_time)
    assert loaded[0].gpu_teraflops == pytest.approx(measurements[0].gpu_teraflops)


def test_checkpoint_measurements_round_trip(tmp_path, checkpoint_dataset):
    measurements = checkpoint_dataset.measurements()
    path = save_checkpoint_measurements(measurements, tmp_path / "ckpt.csv")
    loaded = load_checkpoint_measurements(path)
    assert len(loaded) == len(measurements)
    assert loaded[3].total_bytes == measurements[3].total_bytes
    assert loaded[3].duration == pytest.approx(measurements[3].duration)


def test_load_profiler_combines_datasets(tmp_path, speed_dataset, checkpoint_dataset):
    speed_path = save_speed_measurements(speed_dataset.measurements(),
                                         tmp_path / "speed.csv")
    ckpt_path = save_checkpoint_measurements(checkpoint_dataset.measurements(),
                                             tmp_path / "ckpt.csv")
    profiler = load_profiler(speed_path, ckpt_path)
    assert len(profiler.speed_measurements) == len(speed_dataset.measurements())
    assert len(profiler.checkpoint_measurements) == len(checkpoint_dataset.measurements())


def test_revocation_records_round_trip(tmp_path):
    campaign = run_revocation_campaign(
        launch_counts={("k80", "us-east1"): 10, ("v100", "asia-east1"): 10}, seed=3)
    path = save_revocation_records(campaign, tmp_path / "revocations.json")
    loaded = load_revocation_records(path)
    assert len(loaded.records) == len(campaign.records)
    assert loaded.revocation_table() == campaign.revocation_table()
    # Survivors keep a null revocation hour through the round trip.
    survivors = [r for r in loaded.records if not r.revoked]
    assert all(r.revocation_hour_local is None for r in survivors)


def test_missing_files_raise(tmp_path):
    with pytest.raises(DataError):
        load_speed_measurements(tmp_path / "absent.csv")
    with pytest.raises(DataError):
        load_checkpoint_measurements(tmp_path / "absent.csv")
    with pytest.raises(DataError):
        load_revocation_records(tmp_path / "absent.json")


def test_malformed_revocation_file_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(DataError):
        load_revocation_records(bad)


def test_empty_speed_file_raises(tmp_path):
    path = save_speed_measurements([], tmp_path / "empty.csv")
    with pytest.raises(DataError):
        load_speed_measurements(path)
