"""Tests for the replacement- and recomputation-overhead ground truth."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.recomputation import RecomputationModel
from repro.perf.replacement import ReplacementOverheadModel


@pytest.fixture()
def model():
    return ReplacementOverheadModel(rng=np.random.default_rng(0))


def test_cold_start_much_more_expensive_than_warm(model, resnet15_profile):
    cold = model.mean_total(resnet15_profile, cold=True)
    warm = model.mean_total(resnet15_profile, cold=False)
    # The paper reports ~75.6 s cold vs ~14.8 s warm for ResNet-15.
    assert 60.0 < cold < 95.0
    assert 10.0 < warm < 20.0
    assert cold > 3.0 * warm


def test_overhead_grows_with_model_complexity(model, catalog):
    small = model.mean_total(catalog.profile("resnet_15"), cold=False)
    big = model.mean_total(catalog.profile("shake_shake_big"), cold=False)
    # Shake-Shake Big costs roughly 15 seconds more than ResNet-15 (Fig. 10).
    assert 10.0 < big - small < 25.0


def test_breakdown_components(model, resnet32_profile):
    cold = model.mean_breakdown(resnet32_profile, cold=True)
    warm = model.mean_breakdown(resnet32_profile, cold=False)
    assert cold.server_startup > 0 and cold.dataset_download > 0
    assert warm.server_startup == 0 and warm.dataset_download == 0
    assert cold.graph_setup == pytest.approx(warm.graph_setup)
    assert cold.total == pytest.approx(
        cold.server_startup + cold.dataset_download + cold.framework_start
        + cold.session_join + cold.graph_setup)


def test_sampled_breakdown_close_to_mean(model, resnet15_profile):
    totals = [model.sample(resnet15_profile, cold=True).total for _ in range(100)]
    assert np.mean(totals) == pytest.approx(
        model.mean_total(resnet15_profile, cold=True), rel=0.1)


def test_sample_rejects_negative_cov(model, resnet15_profile):
    with pytest.raises(ConfigurationError):
        model.sample(resnet15_profile, cold=True, cov=-0.1)


def test_overhead_not_gpu_dependent_for_warm_starts(model, resnet15_profile):
    # Warm starts reuse an existing server, so the GPU type is irrelevant.
    assert model.mean_total(resnet15_profile, cold=False, gpu_name="k80") == pytest.approx(
        model.mean_total(resnet15_profile, cold=False, gpu_name="v100"))


def test_legacy_recomputation_grows_with_lost_steps():
    model = RecomputationModel()
    overheads = [model.legacy_overhead(steps, cluster_speed=18.9)
                 for steps in (1000, 2000, 3000)]
    assert overheads == sorted(overheads)
    assert overheads[0] > model.session_restart_seconds


def test_transient_tf_bounded_by_checkpoint_interval():
    model = RecomputationModel()
    bounded = model.transient_tf_overhead(10_000, checkpoint_interval_steps=4000,
                                          cluster_speed=18.9)
    assert bounded == pytest.approx(4000 / 18.9)


def test_savings_equals_legacy_overhead():
    model = RecomputationModel()
    assert model.savings(1500, 4000, 18.9) == pytest.approx(
        model.legacy_overhead(1500, 18.9))


def test_recomputation_invalid_inputs():
    model = RecomputationModel()
    with pytest.raises(ConfigurationError):
        model.legacy_overhead(-1, 10.0)
    with pytest.raises(ConfigurationError):
        model.legacy_overhead(10, 0.0)
    with pytest.raises(ConfigurationError):
        model.transient_tf_overhead(10, 0, 10.0)
    with pytest.raises(ConfigurationError):
        RecomputationModel(session_restart_seconds=-1)
