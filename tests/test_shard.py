"""Sharded fleet execution: partitioner, golden identity matrix, merging.

``tests/data/fleet_golden_multi_region_hetero_seed5.json`` was frozen from
the **single-process** fleet runner the day the sharded driver landed.
The tentpole contract: ``run_fleet_sharded`` must keep producing that
payload byte for byte at every shard count, across the fleet scheduler
(``REPRO_FLEET_SCHEDULER``), the simulation core path
(``REPRO_CORE_FASTFORWARD``), and the trace level
(``REPRO_FLEET_TRACE_LEVEL``) — sharding is an execution knob, never a
modeling decision.

Regenerate the fixture **only** for a deliberate, documented payload
change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.scenarios import get_scenario, run_fleet
    from repro.simulation.rng import RandomStreams
    payload = run_fleet(get_scenario("multi_region_hetero"), RandomStreams(seed=5))
    with open("tests/data/fleet_golden_multi_region_hetero_seed5.json", "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    PY
"""

import dataclasses
import json
import pathlib

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.scenarios import (
    get_scenario,
    partition_scenario,
    run_fleet,
    run_fleet_sharded,
)
from repro.scenarios.fleet import run_scenario
from repro.scenarios.shard import ShardedFleetRun
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.rng import RandomStreams

DATA = pathlib.Path(__file__).parent / "data"
FIXTURE = DATA / "fleet_golden_multi_region_hetero_seed5.json"
SINGLE_REGION_FIXTURE = DATA / "fleet_golden_single_region_k80_seed5.json"

REGIONS = ("us-east1", "us-central1", "us-west1", "europe-west1")


def golden_payload():
    return json.loads(FIXTURE.read_text())


def normalized(payload):
    """A JSON round trip so tuples/ints normalize exactly like the fixture."""
    return json.loads(json.dumps(payload))


def four_region_storm(jobs=8, total_steps=30_000):
    """A revocation storm spread over the four K80 regions (one component
    per region), small enough for tests but hot enough to draw revocations
    at seed 3 — so the cross-shard draw service and record merge are
    actually exercised, not just the launch path."""
    specs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=total_steps,
                workers=(("k80", REGIONS[index % len(REGIONS)]),) * 3,
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(jobs))
    return ScenarioSpec(
        name="shard_storm_test",
        description="four-region storm for shard tests",
        jobs=specs,
        pool_capacity={("k80", region): jobs for region in REGIONS},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5)


# ---------------------------------------------------------------------------
# Partitioner.
# ---------------------------------------------------------------------------
def test_partitioner_groups_by_connected_component():
    """multi_region_hetero's four jobs touch disjoint cell sets, so four
    shards put every job in its own group, each owning its own cells."""
    scenario = get_scenario("multi_region_hetero")
    groups = partition_scenario(scenario, 4)
    assert sorted(g.job_indices for g in groups) == [(0,), (1,), (2,), (3,)]
    owned = [cell for group in groups for cell in group.cells]
    assert sorted(owned) == sorted(scenario.pool_capacity)
    assert len(owned) == len(set(owned)), "cells must be owned by one shard"
    assert [g.index for g in groups] == [0, 1, 2, 3]


def test_partitioner_balances_components_deterministically():
    scenario = get_scenario("multi_region_hetero")
    first = partition_scenario(scenario, 2)
    second = partition_scenario(scenario, 2)
    assert [(g.job_indices, g.cells, g.weight) for g in first] == \
        [(g.job_indices, g.cells, g.weight) for g in second]
    total_weight = sum(g.weight for g in first)
    assert all(g.weight <= total_weight for g in first)
    assert {index for g in first for index in g.job_indices} == {0, 1, 2, 3}


def test_partitioner_jobs_sharing_a_cell_stay_together():
    scenario = four_region_storm(jobs=8)
    groups = partition_scenario(scenario, 8)
    # Two jobs per region share that region's cell: 4 components, not 8.
    assert len(groups) == 4
    for group in groups:
        regions = {scenario.jobs[index].workers[0][1]
                   for index in group.job_indices}
        assert len(regions) == 1


def test_partitioner_gives_spare_cells_to_shard_zero():
    scenario = dataclasses.replace(
        get_scenario("multi_region_hetero"),
        pool_capacity={**get_scenario("multi_region_hetero").pool_capacity,
                       ("v100", "us-central1"): 2})
    groups = partition_scenario(scenario, 2)
    assert ("v100", "us-central1") in groups[0].cells
    owned = [cell for group in groups for cell in group.cells]
    assert sorted(owned) == sorted(scenario.pool_capacity)


@pytest.mark.parametrize("scenario_name, shards", [
    ("multi_region_hetero", 1),     # shards=1 is always one group
    ("single_region_k80", 8),       # one shared cell: one component
    ("adaptive_placement", 4),      # adaptive couples every cell by design
])
def test_partitioner_single_group_cases(scenario_name, shards):
    scenario = get_scenario(scenario_name)
    groups = partition_scenario(scenario, shards)
    assert len(groups) == 1
    assert groups[0].job_indices == tuple(range(len(scenario.jobs)))
    assert groups[0].cells == tuple(sorted(scenario.pool_capacity))


def test_partitioner_rejects_bad_shard_counts():
    with pytest.raises(ConfigurationError):
        partition_scenario(get_scenario("multi_region_hetero"), 0)


def test_shard_subset_keeps_validation_and_pins_the_epoch():
    scenario = get_scenario("multi_region_hetero")
    subset = scenario.shard_subset((1, 2), (("p100", "us-central1"),
                                            ("v100", "us-west1")),
                                   epoch_hour_utc=8.25)
    assert [job.name for job in subset.jobs] == \
        [scenario.jobs[1].name, scenario.jobs[2].name]
    assert subset.epoch_hour_utc == 8.25
    assert sorted(subset.pool_capacity) == [("p100", "us-central1"),
                                            ("v100", "us-west1")]
    with pytest.raises(ConfigurationError):
        scenario.shard_subset((), (("p100", "us-central1"),))


# ---------------------------------------------------------------------------
# Golden identity matrix (the tentpole contract).
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ("wakeset", "roundrobin"))
@pytest.mark.parametrize("fastforward", ("1", "0"))
@pytest.mark.parametrize("trace_level", ("full", "summary"))
def test_two_shard_fleet_matches_the_frozen_single_process_payload(
        scheduler, fastforward, trace_level, catalog, monkeypatch):
    """Two shards reproduce the frozen single-process payload byte for
    byte, for every scheduler x core path x trace level combination (all
    knobs through their environment switches, which the shard worker
    processes inherit)."""
    monkeypatch.setenv("REPRO_FLEET_SCHEDULER", scheduler)
    monkeypatch.setenv("REPRO_CORE_FASTFORWARD", fastforward)
    monkeypatch.setenv("REPRO_FLEET_TRACE_LEVEL", trace_level)
    payload = run_fleet_sharded(get_scenario("multi_region_hetero"),
                                RandomStreams(seed=5), catalog=catalog,
                                shards=2)
    assert normalized(payload) == golden_payload()


@pytest.mark.parametrize("shards", (1, 4))
def test_other_shard_counts_match_the_frozen_payload(shards, catalog):
    payload = run_fleet_sharded(get_scenario("multi_region_hetero"),
                                RandomStreams(seed=5), catalog=catalog,
                                shards=shards)
    assert normalized(payload) == golden_payload()


def test_fixture_matches_the_live_single_process_runner(catalog):
    """The committed fixture is the single-process payload — if this
    drifts, every sharded comparison above is testing against history."""
    payload = run_fleet(get_scenario("multi_region_hetero"),
                        RandomStreams(seed=5), catalog=catalog)
    assert normalized(payload) == golden_payload()


def test_single_component_fleet_runs_single_process_at_any_shard_count(
        catalog):
    """A one-component fleet (everything shares one cell) takes the stock
    in-process path whatever the shard count — byte-identical to the
    frozen PR 4 payload, no processes spawned."""
    run = ShardedFleetRun(get_scenario("single_region_k80"),
                          RandomStreams(seed=5), catalog=catalog, shards=8)
    assert len(run.groups) == 1
    payload = run.run()
    assert normalized(payload) == json.loads(SINGLE_REGION_FIXTURE.read_text())
    assert run.events_processed > 0


def test_storm_with_revocations_is_identical_across_shard_counts(catalog):
    """The four-region storm draws real revocations at seed 3, so this
    pins the cross-shard draw service and the (time, draw rank) merge of
    revocation records — not just the launch path."""
    scenario = four_region_storm()
    single = run_fleet(scenario, RandomStreams(seed=3), catalog=catalog)
    assert single["revocations"] > 0, "dead storm: tune seed/steps"
    assert single["revocation_hours_local"]
    for shards in (2, 4):
        payload = run_fleet_sharded(scenario, RandomStreams(seed=3),
                                    catalog=catalog, shards=shards)
        assert normalized(payload) == normalized(single)


def test_warm_pool_fleet_is_identical_across_shards(catalog):
    """Two warm-pool components merge their warm counters exactly
    (the conditional replacements_warm / warm_reuse_rate payload keys)."""
    base = get_scenario("warm_reuse")
    jobs = base.jobs + tuple(
        dataclasses.replace(job, name=f"{job.name}-west",
                            workers=(("k80", "us-west1"),) * 3)
        for job in base.jobs)
    scenario = dataclasses.replace(
        base, name="warm_two_region", jobs=jobs,
        pool_capacity={("k80", "europe-west1"): 12, ("k80", "us-west1"): 12})
    single = run_fleet(scenario, RandomStreams(seed=11), catalog=catalog)
    payload = run_fleet_sharded(scenario, RandomStreams(seed=11),
                                catalog=catalog, shards=2)
    assert normalized(payload) == normalized(single)
    assert "replacements_warm" in payload
    assert "warm_reuse_rate" in payload


def test_sharded_event_counts_sum_across_shards(catalog):
    scenario = four_region_storm()
    run = ShardedFleetRun(scenario, RandomStreams(seed=3), catalog=catalog,
                          shards=4)
    assert len(run.groups) == 4
    run.run()
    assert run.events_processed > 0


# ---------------------------------------------------------------------------
# Failure propagation and plumbing.
# ---------------------------------------------------------------------------
def _live_fleet_children():
    """Any still-running multiprocessing children of this test process."""
    import multiprocessing

    return [process for process in multiprocessing.active_children()
            if process.name.startswith("repro-fleet-shard")]


def test_shard_failure_surfaces_as_a_simulation_error(catalog):
    """A shard that dies mid-run (unknown model resolved in the child)
    raises in the parent with the child traceback, instead of hanging the
    draw service."""
    scenario = four_region_storm(jobs=4, total_steps=1000)
    broken = dataclasses.replace(
        scenario,
        jobs=scenario.jobs[:3] + (dataclasses.replace(
            scenario.jobs[3], model_name="no_such_model"),))
    with pytest.raises(SimulationError, match="shard"):
        run_fleet_sharded(broken, RandomStreams(seed=3), catalog=catalog,
                          shards=4)
    assert _live_fleet_children() == [], \
        "the fail-fast path must reap every child before raising"


def test_fail_fast_path_reaps_all_children(catalog):
    """A deterministic child error is NOT retried (replaying it would just
    repeat it); the parent raises with zero restarts used and no live
    children left behind."""
    scenario = four_region_storm(jobs=4, total_steps=1000)
    broken = dataclasses.replace(
        scenario,
        jobs=(dataclasses.replace(scenario.jobs[0],
                                  model_name="no_such_model"),)
        + scenario.jobs[1:])
    run = ShardedFleetRun(broken, RandomStreams(seed=3), catalog=catalog,
                          shards=4, max_restarts=5)
    with pytest.raises(SimulationError, match="no_such_model"):
        run.run()
    assert run.restarts == [], "deterministic errors must not burn restarts"
    assert _live_fleet_children() == []


def test_exhausted_restart_budget_raises_and_reaps(catalog, monkeypatch):
    """A shard that keeps crashing (chaos kills every incarnation) exhausts
    the restart budget, surfaces a clean SimulationError naming it, and
    leaves no live children."""
    monkeypatch.setenv(
        "REPRO_CHAOS",
        ";".join(f"shard_crash:shard=0,at=1,incarnation={i}"
                 for i in range(4)))
    scenario = four_region_storm(jobs=4, total_steps=1000)
    run = ShardedFleetRun(scenario, RandomStreams(seed=3), catalog=catalog,
                          shards=4, max_restarts=2)
    with pytest.raises(SimulationError,
                       match=r"restart budget \(2\) is exhausted"):
        run.run()
    assert len(run.restarts) == 2, "both budgeted restarts were attempted"
    assert all(record["shard"] == 0 for record in run.restarts)
    assert _live_fleet_children() == []


def test_restart_budget_env_knob_and_validation(monkeypatch):
    from repro.scenarios.shard import _heartbeat_default, _max_restarts_default

    monkeypatch.setenv("REPRO_SHARD_RESTARTS", "7")
    assert _max_restarts_default() == 7
    monkeypatch.setenv("REPRO_SHARD_RESTARTS", "-1")
    with pytest.raises(ConfigurationError):
        _max_restarts_default()
    monkeypatch.setenv("REPRO_SHARD_RESTARTS", "lots")
    with pytest.raises(ConfigurationError):
        _max_restarts_default()
    monkeypatch.setenv("REPRO_SHARD_HEARTBEAT_SECONDS", "0")
    with pytest.raises(ConfigurationError):
        _heartbeat_default()
    scenario = four_region_storm(jobs=4, total_steps=1000)
    with pytest.raises(ConfigurationError):
        ShardedFleetRun(scenario, RandomStreams(seed=3), shards=2,
                        max_restarts=-1)
    with pytest.raises(ConfigurationError):
        ShardedFleetRun(scenario, RandomStreams(seed=3), shards=2,
                        heartbeat_seconds=0.0)


def test_fleet_cell_routes_through_the_env_knob(catalog, monkeypatch):
    """REPRO_FLEET_SHARDS=2 changes execution, not payloads, all the way
    through the sweep engine (run_scenario -> fleet_cell)."""
    scenario = get_scenario("multi_region_hetero")
    monkeypatch.delenv("REPRO_FLEET_SHARDS", raising=False)
    single = run_scenario(scenario, replicates=1, seed=5, workers=1)
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "2")
    sharded = run_scenario(scenario, replicates=1, seed=5, workers=1)
    assert normalized(sharded.payloads()) == normalized(single.payloads())


def test_bad_env_shard_count_is_a_configuration_error(monkeypatch):
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "zero")
    from repro.scenarios.fleet import _shards_default
    with pytest.raises(ConfigurationError):
        _shards_default()


def test_cli_shards_flag_is_scoped_and_payload_identical(tmp_path, monkeypatch):
    """``--shards 2`` produces the same payloads as ``--shards 1`` and
    restores the environment afterwards (no leak between invocations)."""
    import os

    from repro.scenarios.cli import main

    monkeypatch.delenv("REPRO_FLEET_SHARDS", raising=False)
    out_single = tmp_path / "single.json"
    out_sharded = tmp_path / "sharded.json"
    assert main(["run", "multi_region_hetero", "--replicates", "1",
                 "--seed", "5", "--shards", "1",
                 "--json", str(out_single)]) == 0
    assert main(["run", "multi_region_hetero", "--replicates", "1",
                 "--seed", "5", "--shards", "2",
                 "--json", str(out_sharded)]) == 0
    assert "REPRO_FLEET_SHARDS" not in os.environ
    single = json.loads(out_single.read_text())
    sharded = json.loads(out_sharded.read_text())
    assert sharded["fleets"] == single["fleets"]


class _LocalDrawService:
    """An in-process stand-in for the parent's pipe: answers each draw
    request from a local RevocationModel, in request order.  Lets tests
    drive ShardFleetRun (normally child-process code) on this side of the
    fork, where assertions and coverage can see it."""

    def __init__(self, streams):
        from repro.cloud.revocation import RevocationModel

        self._model = RevocationModel(rng=streams.get("revocation"))
        self._replies = []
        self._rank = 0
        self.progress_reports = 0

    def send(self, message):
        kind = message[0]
        if kind == "progress":
            self.progress_reports += 1
            return
        assert kind == "draw"
        _, _time, _rank, calls = message
        outcomes = []
        for call_kind, gpu, region, count, launch_hour in calls:
            if call_kind == "batch":
                outcomes.extend(self._model.sample_batch(
                    gpu, region, count, launch_hour_local=launch_hour,
                    stressed=True))
            else:
                outcomes.append(self._model.sample(
                    gpu, region, launch_hour_local=launch_hour,
                    stressed=True))
        self._replies.append(("grant", (outcomes, self._rank)))
        self._rank += len(outcomes)

    def recv(self):
        return self._replies.pop(0)


def test_one_shard_run_reproduces_the_whole_fleet(catalog):
    """A ShardFleetRun holding *every* job, fed by an in-process draw
    service, is the single-process fleet: same draw order, same payload,
    and its revocation records carry the global draw ranks in order."""
    from repro.scenarios.shard import ShardFleetRun

    scenario = four_region_storm()
    single = run_fleet(scenario, RandomStreams(seed=3), catalog=catalog)

    streams = RandomStreams(seed=3)
    service = _LocalDrawService(streams)
    epoch = scenario.epoch_hour_utc
    sub = scenario.shard_subset(tuple(range(len(scenario.jobs))),
                                tuple(sorted(scenario.pool_capacity)),
                                epoch_hour_utc=epoch)
    run = ShardFleetRun(sub, RandomStreams(seed=3), conn=service,
                        job_ranks=range(len(scenario.jobs)),
                        catalog=catalog)
    payload = run.run()
    assert normalized(payload) == normalized(single)
    ranks = [rank for _time, rank, _hour in run.revocation_records]
    assert len(ranks) == single["revocations"]
    assert [record[2] for record in sorted(
        run.revocation_records, key=lambda r: (r[0], r[1]))] == \
        single["revocation_hours_local"]
    assert service.progress_reports > 0
