"""Tests for the revocation and replacement/recomputation campaigns."""

import pytest

from repro.cloud.revocation import REVOCATION_CALIBRATION, RevocationModel
from repro.measurement.replacement_campaign import (
    run_recomputation_campaign,
    run_replacement_overhead_campaign,
)
from repro.measurement.revocation_campaign import (
    TABLE5_LAUNCH_COUNTS,
    run_revocation_campaign,
)


@pytest.fixture(scope="module")
def revocation_campaign():
    return run_revocation_campaign(seed=10)


def test_launch_counts_match_table5(revocation_campaign):
    table = revocation_campaign.revocation_table()
    assert set(table) == set(TABLE5_LAUNCH_COUNTS)
    for cell, (launched, revoked, fraction) in table.items():
        assert launched == TABLE5_LAUNCH_COUNTS[cell]
        assert 0 <= revoked <= launched
        assert fraction == pytest.approx(revoked / launched)
    totals = revocation_campaign.totals_by_gpu()
    assert totals["k80"][0] == 156
    assert totals["p100"][0] == 120
    assert totals["v100"][0] == 120


def test_revocation_fractions_track_calibration(revocation_campaign):
    table = revocation_campaign.revocation_table()
    # With only 30-48 launches per cell (the paper's own sample sizes) the
    # per-cell fraction is noisy; allow a ~3-sigma binomial band.
    for cell, params in REVOCATION_CALIBRATION.items():
        _launched, _revoked, fraction = table[cell]
        assert fraction == pytest.approx(params.p_revoke_24h, abs=0.27)


def test_workload_does_not_matter(revocation_campaign):
    split = revocation_campaign.workload_split()
    assert abs(split["idle"][2] - split["stressed"][2]) < 0.12


def test_lifetime_cdfs_shape(revocation_campaign):
    hours = [1, 2, 5, 9, 13, 17, 21, 24]
    europe = revocation_campaign.lifetime_cdf("k80", "europe-west1", hours)
    west = revocation_campaign.lifetime_cdf("k80", "us-west1", hours)
    assert all(b >= a for a, b in zip(europe, europe[1:]))
    # Fig. 8: europe-west1 K80s die much faster than us-west1 K80s.
    assert europe[1] > 0.35
    assert west[1] < 0.1
    assert europe[-1] > west[-1]


def test_mean_time_to_revocation(revocation_campaign):
    mttr = revocation_campaign.mean_time_to_revocation("k80", "us-central1")
    assert 8.0 < mttr < 23.0
    revoked_only = revocation_campaign.mean_time_to_revocation(
        "k80", "us-central1", include_survivors=False)
    assert revoked_only < mttr


def test_hour_histograms(revocation_campaign):
    v100 = revocation_campaign.hour_of_day_histogram("v100")
    assert v100[16:20].sum() == 0
    assert v100.sum() > 0
    k80 = revocation_campaign.hour_of_day_histogram("k80")
    assert k80.sum() > 0
    assert len(k80) == 24


def test_campaign_to_estimator(revocation_campaign):
    estimator = revocation_campaign.to_estimator(fallback_model=RevocationModel())
    probability = estimator.revocation_probability("k80", "us-west1", 12.0)
    assert 0.0 <= probability <= 0.4
    expected = estimator.expected_revocations(
        [("k80", "us-west1"), ("p100", "us-east1")], 12.0)
    assert expected > probability


def test_replacement_overhead_campaign_matches_fig10(catalog):
    result = run_replacement_overhead_campaign(repetitions=6, seed=3, catalog=catalog)
    cold_r15 = result.cell("resnet_15", cold_start=True).mean_seconds
    warm_r15 = result.cell("resnet_15", cold_start=False).mean_seconds
    assert 60.0 < cold_r15 < 95.0
    assert 10.0 < warm_r15 < 20.0
    cold_big = result.cell("shake_shake_big", cold_start=True).mean_seconds
    assert 8.0 < cold_big - cold_r15 < 30.0
    series = result.as_series()
    assert len(series["cold"]) == 4 and len(series["warm"]) == 4
    with pytest.raises(KeyError):
        result.cell("unknown", True)


def test_recomputation_campaign_matches_fig11(catalog):
    result = run_recomputation_campaign(replacement_steps=(1500, 2500, 3500), seed=3,
                                        catalog=catalog)
    series = result.overhead_series()
    overheads = [o for _step, o in series]
    # Overhead grows with the number of steps to recompute and stays within
    # the same order of magnitude as the paper's 224-second worst case.
    assert overheads == sorted(overheads)
    assert overheads[0] > 30.0
    assert overheads[-1] < 400.0
    assert result.max_overhead() == overheads[-1]
    for point in result.points:
        assert point.legacy_seconds > point.transient_tf_seconds
